#include "maxent/polynomial.h"

#include <algorithm>
#include <numeric>

#include "common/thread_pool.h"

namespace entropydb {

namespace {

/// Union-find over attribute ids, used to split statistics into connected
/// components.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Status CompressedPolynomial::EnumerateGroups(const VariableRegistry& reg,
                                             Component* comp,
                                             size_t max_groups) {
  const size_t nattrs = comp->attrs.size();
  // Local attribute position lookup.
  std::unordered_map<AttrId, size_t> pos;
  for (size_t i = 0; i < nattrs; ++i) pos[comp->attrs[i]] = i;

  // Full-domain rectangle template.
  std::vector<Interval> full(nattrs);
  for (size_t i = 0; i < nattrs; ++i) {
    full[i] = Interval{0, reg.domain_size(comp->attrs[i]) - 1};
  }

  comp->stats_offset.push_back(0);

  // Applies stat `sid`'s ranges to `rect`; false when empty.
  auto intersect = [&](const MultiDimStatistic& s,
                       std::vector<Interval>* rect) {
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      size_t p = pos.at(s.attrs[i]);
      (*rect)[p] = (*rect)[p].Intersect(s.ranges[i]);
      if ((*rect)[p].empty()) return false;
    }
    return true;
  };

  // Ordered DFS over compatible sets: each set S = {s_1 < s_2 < ...} is
  // reached exactly once, by inserting its members in increasing order.
  // Subsets of compatible sets are compatible, so pruning on an empty
  // intersection is exhaustive, not heuristic.
  std::vector<uint32_t> set_stack;
  std::vector<std::vector<Interval>> rect_stack;

  // Emits the current set as a group.
  auto emit = [&]() -> Status {
    if (comp->num_groups() >= max_groups) {
      return Status::ResourceExhausted(
          "compressed polynomial exceeds max_groups = " +
          std::to_string(max_groups) +
          "; reduce the statistic budget or raise the cap");
    }
    const auto& rect = rect_stack.back();
    comp->rects.insert(comp->rects.end(), rect.begin(), rect.end());
    comp->stats_flat.insert(comp->stats_flat.end(), set_stack.begin(),
                            set_stack.end());
    comp->stats_offset.push_back(
        static_cast<uint32_t>(comp->stats_flat.size()));
    uint32_t g = static_cast<uint32_t>(comp->num_groups() - 1);
    for (uint32_t sid : set_stack) {
      comp->stat_groups[delta_local_[sid]].push_back(g);
    }
    return Status::OK();
  };

  // Depth-first extension starting after local stat index `from`.
  // Implemented iteratively-recursively via an explicit lambda.
  struct Frame {
    size_t next;  // next local stat index to try
  };
  std::vector<Frame> frames;

  // Seed: empty set with full rectangle; do NOT emit (the base term is
  // handled separately by the evaluator).
  rect_stack.push_back(full);
  frames.push_back(Frame{0});

  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.next >= comp->stats.size()) {
      frames.pop_back();
      rect_stack.pop_back();
      if (!set_stack.empty()) set_stack.pop_back();
      continue;
    }
    size_t idx = f.next++;
    uint32_t sid = comp->stats[idx];
    std::vector<Interval> rect = rect_stack.back();
    if (!intersect(reg.multi_dim(sid), &rect)) continue;
    // Found a compatible extension: record it and descend.
    set_stack.push_back(sid);
    rect_stack.push_back(std::move(rect));
    RETURN_NOT_OK(emit());
    frames.push_back(Frame{idx + 1});
  }
  return Status::OK();
}

Result<CompressedPolynomial> CompressedPolynomial::Build(
    const VariableRegistry& reg, PolynomialOptions opts) {
  CompressedPolynomial poly;
  poly.domain_sizes_ = reg.domain_sizes();
  const size_t m = reg.num_attributes();
  const size_t k = reg.num_multi_dim();

  // 1. Connected components of the statistic/attribute graph.
  UnionFind uf(m);
  for (size_t j = 0; j < k; ++j) {
    const auto& s = reg.multi_dim(j);
    for (size_t i = 1; i < s.attrs.size(); ++i) {
      uf.Union(s.attrs[0], s.attrs[i]);
    }
  }
  // Attributes touched by at least one statistic.
  std::vector<bool> touched(m, false);
  for (size_t j = 0; j < k; ++j) {
    for (AttrId a : reg.multi_dim(j).attrs) touched[a] = true;
  }
  std::unordered_map<size_t, int> root_to_comp;
  poly.attr_component_.assign(m, -1);
  for (AttrId a = 0; a < m; ++a) {
    if (!touched[a]) {
      poly.free_attrs_.push_back(a);
      continue;
    }
    size_t root = uf.Find(a);
    auto it = root_to_comp.find(root);
    int c;
    if (it == root_to_comp.end()) {
      c = static_cast<int>(poly.components_.size());
      root_to_comp.emplace(root, c);
      poly.components_.emplace_back();
    } else {
      c = it->second;
    }
    poly.attr_component_[a] = c;
    poly.components_[c].attrs.push_back(a);
  }

  // 2. Assign statistics to components, recording each statistic's local
  // index up front (statistics are appended in increasing global id, so the
  // per-component lists are born sorted — no per-call binary search later).
  poly.delta_component_.assign(k, -1);
  poly.delta_local_.assign(k, 0);
  for (size_t j = 0; j < k; ++j) {
    int c = poly.attr_component_[reg.multi_dim(j).attrs[0]];
    poly.delta_component_[j] = c;
    poly.delta_local_[j] =
        static_cast<uint32_t>(poly.components_[c].stats.size());
    poly.components_[c].stats.push_back(static_cast<uint32_t>(j));
  }
  for (auto& comp : poly.components_) {
    std::sort(comp.attrs.begin(), comp.attrs.end());
    comp.stat_groups.resize(comp.stats.size());
  }

  // 3. Enumerate compatible statistic sets per component, respecting a
  // global budget.
  size_t remaining = opts.max_groups;
  for (auto& comp : poly.components_) {
    RETURN_NOT_OK(poly.EnumerateGroups(reg, &comp, remaining));
    remaining -= comp.num_groups();
  }

  // 4. Position lookups for derivative passes.
  poly.attr_local_.assign(m, 0);
  for (size_t c = 0; c < poly.components_.size(); ++c) {
    for (size_t i = 0; i < poly.components_[c].attrs.size(); ++i) {
      poly.attr_local_[poly.components_[c].attrs[i]] = i;
    }
  }
  poly.family_order_ = poly.free_attrs_;
  for (const auto& comp : poly.components_) {
    poly.family_order_.insert(poly.family_order_.end(), comp.attrs.begin(),
                              comp.attrs.end());
  }
  poly.num_groups_ = poly.NumGroups();
  poly.parallel_min_groups_ = opts.parallel_min_groups;
  return poly;
}

std::vector<double> CompressedPolynomial::ComponentDeltaProducts(
    int c, const ModelState& state) const {
  const Component& comp = components_[c];
  std::vector<double> dps(comp.num_groups());
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    double dp = 1.0;
    for (uint32_t s = comp.stats_offset[g]; s < comp.stats_offset[g + 1];
         ++s) {
      dp *= state.delta[comp.stats_flat[s]] - 1.0;
      if (dp == 0.0) break;
    }
    dps[g] = dp;
  }
  return dps;
}

std::vector<double> CompressedPolynomial::FreeFamilyCofactorsAndRefresh(
    AttrId a, EvalContext* ctx) const {
  // Refreshes the free product and returns Rest = P / T_a for every value
  // (computed without division). Component attributes go through
  // ComponentSweep instead.
  double rest = 1.0;
  for (AttrId f : free_attrs_) {
    if (f != a) rest *= ctx->attr_total[f];
  }
  ctx->free_product = rest * ctx->attr_total[a];
  for (double v : ctx->comp_value) rest *= v;
  ctx->value = rest * ctx->attr_total[a];
  return std::vector<double>(domain_sizes_[a], rest);
}

void ComponentSweep::BeginSweep(const ModelState& state,
                                const CompressedPolynomial::EvalContext& ctx) {
  const auto& comp = poly_->components_[c_];
  const size_t nattrs = comp.attrs.size();
  const size_t ng = comp.num_groups();
  if (!factors_built_) {
    factors_.resize(ng * nattrs);
    for (size_t g = 0; g < ng; ++g) {
      const Interval* rect = &comp.rects[g * nattrs];
      double* f = factors_.data() + g * nattrs;
      for (size_t i = 0; i < nattrs; ++i) {
        f[i] = ctx.prefix[comp.attrs[i]].RangeSum(rect[i].lo, rect[i].hi);
      }
    }
    factors_built_ = true;
  }
  delta_prod_ = poly_->ComponentDeltaProducts(c_, state);
  suffix_.resize(ng * (nattrs + 1));
  prefix_run_.assign(ng, 1.0);
  for (size_t g = 0; g < ng; ++g) {
    const double* f = factors_.data() + g * nattrs;
    double* suf = suffix_.data() + g * (nattrs + 1);
    suf[nattrs] = 1.0;
    for (size_t i = nattrs; i-- > 0;) suf[i] = f[i] * suf[i + 1];
  }
}

std::vector<double> ComponentSweep::FamilyCofactors(
    AttrId a, CompressedPolynomial::EvalContext* ctx) {
  const auto& comp = poly_->components_[c_];
  const size_t nattrs = comp.attrs.size();
  const size_t pos = poly_->attr_local_[a];
  const uint32_t na = poly_->domain_sizes_[a];
  double outer = ctx->free_product;
  for (size_t cc = 0; cc < ctx->comp_value.size(); ++cc) {
    if (static_cast<int>(cc) != c_) outer *= ctx->comp_value[cc];
  }

  DiffArray diff(na);
  double base_others = 1.0;
  for (size_t i = 0; i < nattrs; ++i) {
    if (i != pos) base_others *= ctx->attr_total[comp.attrs[i]];
  }
  diff.RangeAdd(0, na - 1, base_others);
  double total = base_others * ctx->attr_total[a];
  const size_t stride = nattrs + 1;
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    const double dp = delta_prod_[g];
    if (dp == 0.0) continue;
    // Columns < pos: updated this sweep, in the running prefix. Columns
    // > pos: untouched since BeginSweep, in the suffix. One multiply each.
    const double others = dp * prefix_run_[g] * suffix_[g * stride + pos + 1];
    if (others == 0.0) continue;
    const Interval& iv = comp.rects[g * nattrs + pos];
    diff.RangeAdd(iv.lo, iv.hi, others);
    total += others * factors_[g * nattrs + pos];
  }
  ctx->comp_value[c_] = total;
  ctx->value = outer * total;
  std::vector<double> out = diff.Finalize();
  for (double& v : out) v *= outer;
  return out;
}

void ComponentSweep::Advance(AttrId a, bool alphas_changed,
                             const CompressedPolynomial::EvalContext& ctx) {
  const auto& comp = poly_->components_[c_];
  const size_t nattrs = comp.attrs.size();
  const size_t pos = poly_->attr_local_[a];
  if (alphas_changed) {
    const PrefixSum& ps = ctx.prefix[a];
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      const Interval& iv = comp.rects[g * nattrs + pos];
      const double f = ps.RangeSum(iv.lo, iv.hi);
      factors_[g * nattrs + pos] = f;
      prefix_run_[g] *= f;
    }
  } else {
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      prefix_run_[g] *= factors_[g * nattrs + pos];
    }
  }
}

double ComponentSweep::ComponentValue(
    const CompressedPolynomial::EvalContext& ctx) const {
  const auto& comp = poly_->components_[c_];
  double base = 1.0;
  for (AttrId a : comp.attrs) base *= ctx.attr_total[a];
  double total = base;
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    total += delta_prod_[g] * prefix_run_[g];
  }
  return total;
}

bool CompressedPolynomial::UseParallelComponents() const {
  return components_.size() >= 2 && num_groups_ >= parallel_min_groups_;
}

double CompressedPolynomial::ComponentValue(const Component& comp,
                                            const EvalContext& ctx,
                                            const ModelState& state) const {
  // Base term (S = {}) plus every compatible-set summand.
  double base = 1.0;
  for (AttrId a : comp.attrs) base *= ctx.attr_total[a];
  double total = base;
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    total += GroupProduct(comp, g, ctx, state, SIZE_MAX, UINT32_MAX);
  }
  return total;
}

CompressedPolynomial::EvalContext CompressedPolynomial::Evaluate(
    const ModelState& state, const QueryMask& mask) const {
  EvalContext ctx;
  const size_t m = domain_sizes_.size();
  ctx.prefix.resize(m);
  ctx.attr_total.resize(m);

  // Per-attribute masked prefix sums; the only O(N_i) work per evaluation.
  std::vector<double> buf;
  for (AttrId a = 0; a < m; ++a) {
    const auto& alpha = state.alpha[a];
    if (mask.IsAny(a)) {
      ctx.prefix[a].Build(alpha);
    } else {
      buf.assign(alpha.size(), 0.0);
      for (Code v = 0; v < alpha.size(); ++v) {
        if (mask.Allows(a, v)) buf[v] = alpha[v];
      }
      ctx.prefix[a].Build(buf);
    }
    ctx.attr_total[a] = ctx.prefix[a].Total();
  }

  ctx.free_product = 1.0;
  for (AttrId a : free_attrs_) ctx.free_product *= ctx.attr_total[a];

  ctx.comp_value.resize(components_.size());
  if (UseParallelComponents()) {
    ParallelFor(components_.size(), 2, [&](size_t c) {
      ctx.comp_value[c] = ComponentValue(components_[c], ctx, state);
    });
  } else {
    for (size_t c = 0; c < components_.size(); ++c) {
      ctx.comp_value[c] = ComponentValue(components_[c], ctx, state);
    }
  }

  ctx.value = ctx.free_product;
  for (double v : ctx.comp_value) ctx.value *= v;
  return ctx;
}

CompressedPolynomial::EvalContext CompressedPolynomial::EvaluateUnmasked(
    const ModelState& state) const {
  return Evaluate(state, QueryMask(domain_sizes_.size()));
}

void CompressedPolynomial::RefreshAttr(const ModelState& state, AttrId a,
                                       EvalContext* ctx) const {
  ctx->prefix[a].Build(state.alpha[a]);
  ctx->attr_total[a] = ctx->prefix[a].Total();
  const int c = attr_component_[a];
  if (c < 0) {
    ctx->free_product = 1.0;
    for (AttrId f : free_attrs_) ctx->free_product *= ctx->attr_total[f];
  } else {
    ctx->comp_value[c] = ComponentValue(components_[c], *ctx, state);
  }
  ctx->value = ctx->free_product;
  for (double v : ctx->comp_value) ctx->value *= v;
}

double CompressedPolynomial::GroupProduct(const Component& comp, size_t g,
                                          const EvalContext& ctx,
                                          const ModelState& state,
                                          size_t skip_pos,
                                          uint32_t skip_stat) const {
  double prod = 1.0;
  // Delta factors first: cheaper per factor, and frequently exactly zero
  // (pinned zero-target deltas, neutral delta = 1), so the short-circuit
  // usually fires before any prefix-sum lookups happen.
  for (uint32_t s = comp.stats_offset[g]; s < comp.stats_offset[g + 1]; ++s) {
    uint32_t sid = comp.stats_flat[s];
    if (sid == skip_stat) continue;
    prod *= state.delta[sid] - 1.0;
    if (prod == 0.0) return 0.0;
  }
  const size_t nattrs = comp.attrs.size();
  const Interval* rect = &comp.rects[g * nattrs];
  for (size_t i = 0; i < nattrs; ++i) {
    if (i == skip_pos) continue;
    prod *= ctx.prefix[comp.attrs[i]].RangeSum(rect[i].lo, rect[i].hi);
    if (prod == 0.0) return 0.0;
  }
  return prod;
}

std::vector<double> CompressedPolynomial::AlphaDerivatives(
    const ModelState& state, const EvalContext& ctx, AttrId a) const {
  const uint32_t na = domain_sizes_[a];
  const int c = attr_component_[a];

  if (c < 0) {
    // Free attribute: P = T_a * Rest, so dP/dalpha_{a,v} = Rest for all v.
    double rest = 1.0;
    for (AttrId f : free_attrs_) {
      if (f != a) rest *= ctx.attr_total[f];
    }
    for (double v : ctx.comp_value) rest *= v;
    return std::vector<double>(na, rest);
  }

  const Component& comp = components_[c];
  const size_t pos = attr_local_[a];
  const size_t nattrs = comp.attrs.size();
  const double outer = OuterProduct(ctx, c);

  DiffArray diff(na);
  // Base term contributes prod of the other attributes' totals to every v.
  double base = 1.0;
  for (size_t i = 0; i < nattrs; ++i) {
    if (i != pos) base *= ctx.attr_total[comp.attrs[i]];
  }
  diff.RangeAdd(0, na - 1, base);
  // Each group contributes its cofactor on the group's interval of `a`.
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    const Interval& iv = comp.rects[g * nattrs + pos];
    double cof = GroupProduct(comp, g, ctx, state, pos, UINT32_MAX);
    if (cof != 0.0) diff.RangeAdd(iv.lo, iv.hi, cof);
  }
  std::vector<double> out = diff.Finalize();
  for (double& v : out) v *= outer;
  return out;
}

CompressedPolynomial::DerivativeSet CompressedPolynomial::AllDerivatives(
    const ModelState& state, const EvalContext& ctx) const {
  const size_t m = domain_sizes_.size();
  const size_t k = delta_component_.size();
  DerivativeSet out;
  out.alpha.resize(m);
  out.delta.assign(k, 0.0);
  out.delta_local.assign(k, 0.0);

  // Free attributes: dP/dalpha_{a,v} = (prod of the other free totals) *
  // (prod of component values), identical for every v. Prefix/suffix
  // products over the free totals give all of them in one pass.
  if (!free_attrs_.empty()) {
    double comp_prod = 1.0;
    for (double v : ctx.comp_value) comp_prod *= v;
    const size_t nf = free_attrs_.size();
    std::vector<double> pre(nf + 1, 1.0);
    for (size_t i = 0; i < nf; ++i) {
      pre[i + 1] = pre[i] * ctx.attr_total[free_attrs_[i]];
    }
    double suffix = 1.0;
    for (size_t i = nf; i-- > 0;) {
      const double rest = pre[i] * suffix * comp_prod;
      out.alpha[free_attrs_[i]].assign(domain_sizes_[free_attrs_[i]], rest);
      suffix *= ctx.attr_total[free_attrs_[i]];
    }
  }

  // Components: ONE sweep over each component's groups yields the cofactor
  // of every factor — interval and delta alike — via running prefix
  // products and a running suffix product (no division, so zeros are
  // exact). Each component writes only its own attributes and statistics,
  // so the fan-out below is race-free and deterministic.
  auto sweep_component = [&](size_t ci) {
    const Component& comp = components_[ci];
    const size_t nattrs = comp.attrs.size();
    const double outer = OuterProduct(ctx, static_cast<int>(ci));

    std::vector<DiffArray> diffs;
    diffs.reserve(nattrs);
    for (AttrId a : comp.attrs) diffs.emplace_back(domain_sizes_[a]);

    // Base term: cofactor of attr position i = prod of the other totals.
    {
      std::vector<double> pre(nattrs + 1, 1.0);
      for (size_t i = 0; i < nattrs; ++i) {
        pre[i + 1] = pre[i] * ctx.attr_total[comp.attrs[i]];
      }
      double suffix = 1.0;
      for (size_t i = nattrs; i-- > 0;) {
        diffs[i].RangeAdd(0, domain_sizes_[comp.attrs[i]] - 1,
                          pre[i] * suffix);
        suffix *= ctx.attr_total[comp.attrs[i]];
      }
    }

    std::vector<double> factors;
    std::vector<double> pre;
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      const Interval* rect = &comp.rects[g * nattrs];
      const uint32_t s_begin = comp.stats_offset[g];
      const uint32_t s_end = comp.stats_offset[g + 1];
      const size_t width = nattrs + (s_end - s_begin);
      factors.resize(width);
      pre.resize(width + 1);
      size_t num_zero = 0;
      size_t zero_pos = 0;
      double nonzero_prod = 1.0;
      for (size_t i = 0; i < nattrs; ++i) {
        const double f =
            ctx.prefix[comp.attrs[i]].RangeSum(rect[i].lo, rect[i].hi);
        factors[i] = f;
        if (f == 0.0) {
          ++num_zero;
          zero_pos = i;
        } else {
          nonzero_prod *= f;
        }
      }
      for (uint32_t s = s_begin; s < s_end && num_zero < 2; ++s) {
        const double f = state.delta[comp.stats_flat[s]] - 1.0;
        factors[nattrs + (s - s_begin)] = f;
        if (f == 0.0) {
          ++num_zero;
          zero_pos = nattrs + (s - s_begin);
        } else {
          nonzero_prod *= f;
        }
      }
      // Two zero factors kill every cofactor of the group; one zero factor
      // leaves only its own cofactor alive (the product of the others).
      if (num_zero >= 2) continue;
      if (num_zero == 1) {
        if (zero_pos < nattrs) {
          diffs[zero_pos].RangeAdd(rect[zero_pos].lo, rect[zero_pos].hi,
                                   nonzero_prod);
        } else {
          out.delta_local[comp.stats_flat[s_begin + (zero_pos - nattrs)]] +=
              nonzero_prod;
        }
        continue;
      }
      pre[0] = 1.0;
      for (size_t i = 0; i < width; ++i) pre[i + 1] = pre[i] * factors[i];
      double suffix = 1.0;
      for (size_t i = width; i-- > 0;) {
        const double cof = pre[i] * suffix;
        if (i < nattrs) {
          diffs[i].RangeAdd(rect[i].lo, rect[i].hi, cof);
        } else {
          out.delta_local[comp.stats_flat[s_begin + (i - nattrs)]] += cof;
        }
        suffix *= factors[i];
      }
    }

    for (size_t i = 0; i < nattrs; ++i) {
      std::vector<double> derivs = diffs[i].Finalize();
      for (double& v : derivs) v *= outer;
      out.alpha[comp.attrs[i]] = std::move(derivs);
    }
  };

  if (UseParallelComponents()) {
    ParallelFor(components_.size(), 2, sweep_component);
  } else {
    for (size_t c = 0; c < components_.size(); ++c) sweep_component(c);
  }

  for (uint32_t j = 0; j < k; ++j) {
    out.delta[j] = OuterProduct(ctx, delta_component_[j]) * out.delta_local[j];
  }
  return out;
}

double CompressedPolynomial::DeltaDerivativeLocal(const ModelState& state,
                                                  const EvalContext& ctx,
                                                  uint32_t j) const {
  const int c = delta_component_[j];
  const Component& comp = components_[c];
  double sum = 0.0;
  for (uint32_t g : comp.stat_groups[delta_local_[j]]) {
    sum += GroupProduct(comp, g, ctx, state, SIZE_MAX, j);
  }
  return sum;
}

double CompressedPolynomial::DeltaDerivative(const ModelState& state,
                                             const EvalContext& ctx,
                                             uint32_t j) const {
  return OuterProduct(ctx, delta_component_[j]) *
         DeltaDerivativeLocal(state, ctx, j);
}

std::vector<std::vector<double>> CompressedPolynomial::GroupRangeSumProducts(
    const EvalContext& ctx) const {
  std::vector<std::vector<double>> rs(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    const Component& comp = components_[c];
    const size_t nattrs = comp.attrs.size();
    rs[c].resize(comp.num_groups());
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      const Interval* rect = &comp.rects[g * nattrs];
      double prod = 1.0;
      for (size_t i = 0; i < nattrs; ++i) {
        prod *= ctx.prefix[comp.attrs[i]].RangeSum(rect[i].lo, rect[i].hi);
        if (prod == 0.0) break;
      }
      rs[c][g] = prod;
    }
  }
  return rs;
}

double CompressedPolynomial::DeltaDerivativeLocalCached(
    const ModelState& state, const std::vector<double>& rs_prod,
    uint32_t j) const {
  const int c = delta_component_[j];
  const Component& comp = components_[c];
  const std::vector<double>& rs = rs_prod;
  double sum = 0.0;
  for (uint32_t g : comp.stat_groups[delta_local_[j]]) {
    double prod = rs[g];
    if (prod == 0.0) continue;
    for (uint32_t s = comp.stats_offset[g]; s < comp.stats_offset[g + 1];
         ++s) {
      const uint32_t sid = comp.stats_flat[s];
      if (sid == j) continue;
      prod *= state.delta[sid] - 1.0;
      if (prod == 0.0) break;
    }
    sum += prod;
  }
  return sum;
}

double CompressedPolynomial::OuterProduct(const EvalContext& ctx,
                                          int comp) const {
  double prod = ctx.free_product;
  for (size_t c = 0; c < ctx.comp_value.size(); ++c) {
    if (static_cast<int>(c) != comp) prod *= ctx.comp_value[c];
  }
  return prod;
}

// ---------------------------------------------------------------------
// Workspace tier.
// ---------------------------------------------------------------------

const CompressedPolynomial::EvalContext& CompressedPolynomial::PrepareWorkspace(
    const ModelState& state, EvalWorkspace* ws) const {
  const size_t m = domain_sizes_.size();
  if (ws->cache_ == nullptr) {
    // Build the shared immutable half. This is the only O(all groups)
    // warm-up; workspaces that ShareCacheWith a warmed one skip it.
    auto cache = std::make_shared<EvalWorkspace::FactorCache>();
    cache->unmasked = EvaluateUnmasked(state);

    cache->rs_factor.resize(components_.size());
    cache->skip_cof.resize(components_.size());
    cache->delta_prod.resize(components_.size());
    std::vector<double> pre;
    for (size_t c = 0; c < components_.size(); ++c) {
      const Component& comp = components_[c];
      const size_t nattrs = comp.attrs.size();
      cache->rs_factor[c].resize(comp.num_groups() * nattrs);
      cache->skip_cof[c].resize(comp.num_groups() * nattrs);
      cache->delta_prod[c] = ComponentDeltaProducts(static_cast<int>(c), state);
      pre.resize(nattrs + 1);
      for (size_t g = 0; g < comp.num_groups(); ++g) {
        const Interval* rect = &comp.rects[g * nattrs];
        double* factors = &cache->rs_factor[c][g * nattrs];
        for (size_t i = 0; i < nattrs; ++i) {
          factors[i] = cache->unmasked.prefix[comp.attrs[i]].RangeSum(
              rect[i].lo, rect[i].hi);
        }
        // Skip-position cofactors (delta product folded in) via a
        // prefix/suffix pass — division-free, so zero factors are exact.
        double* cof = &cache->skip_cof[c][g * nattrs];
        pre[0] = cache->delta_prod[c][g];
        for (size_t i = 0; i < nattrs; ++i) pre[i + 1] = pre[i] * factors[i];
        double suffix = 1.0;
        for (size_t i = nattrs; i-- > 0;) {
          cof[i] = pre[i] * suffix;
          suffix *= factors[i];
        }
      }
    }
    ws->cache_ = std::move(cache);
  }

  if (!ws->scratch_ready_) {
    ws->attr_masked_.assign(m, 0);
    ws->constrained_.clear();
    ws->masked_prefix_.resize(m);
    ws->eff_total_ = ws->cache_->unmasked.attr_total;
    ws->scratch_ready_ = true;
  }
  return ws->cache_->unmasked;
}

CompressedPolynomial::MaskedEval CompressedPolynomial::MaskedEvaluate(
    const ModelState& state, const QueryMask& mask, EvalWorkspace* ws) const {
  PrepareWorkspace(state, ws);
  const EvalWorkspace::FactorCache& fc = *ws->cache_;

  // Reset the previous mask's per-attribute residue.
  for (AttrId a : ws->constrained_) {
    ws->attr_masked_[a] = 0;
    ws->eff_total_[a] = fc.unmasked.attr_total[a];
  }
  ws->constrained_.clear();

  MaskedEval out;
  out.comp_value = fc.unmasked.comp_value;

  const size_t m = domain_sizes_.size();
  for (AttrId a = 0; a < m; ++a) {
    if (mask.IsAny(a)) continue;
    ws->constrained_.push_back(a);
    ws->attr_masked_[a] = 1;
    const auto& alpha = state.alpha[a];
    ws->buf_.assign(alpha.size(), 0.0);
    for (Code v = 0; v < alpha.size(); ++v) {
      if (mask.Allows(a, v)) ws->buf_[v] = alpha[v];
    }
    ws->masked_prefix_[a].Build(ws->buf_);
    ws->eff_total_[a] = ws->masked_prefix_[a].Total();
  }

  if (ws->constrained_.empty()) {
    out.value = fc.unmasked.value;
    out.free_product = fc.unmasked.free_product;
    return out;
  }

  out.free_product = 1.0;
  for (AttrId f : free_attrs_) out.free_product *= ws->eff_total_[f];

  // Only components containing a constrained attribute get re-walked.
  std::vector<uint8_t>& comp_touched = ws->comp_scratch_;
  comp_touched.assign(components_.size(), 0);
  for (AttrId a : ws->constrained_) {
    if (attr_component_[a] >= 0) comp_touched[attr_component_[a]] = 1;
  }
  for (size_t c = 0; c < components_.size(); ++c) {
    if (!comp_touched[c]) continue;
    const Component& comp = components_[c];
    const size_t nattrs = comp.attrs.size();
    double base = 1.0;
    size_t num_masked = 0;
    size_t masked_pos = 0;
    for (size_t i = 0; i < nattrs; ++i) {
      base *= ws->eff_total_[comp.attrs[i]];
      if (ws->attr_masked_[comp.attrs[i]]) {
        ++num_masked;
        masked_pos = i;
      }
    }
    double total = base;
    if (num_masked == 1) {
      // One constrained attribute: every other factor of every group is
      // pre-multiplied into the cached skip-position cofactor, so each
      // group is one multiply-add.
      const PrefixSum& ps = ws->masked_prefix_[comp.attrs[masked_pos]];
      const double* cof = fc.skip_cof[c].data();
      for (size_t g = 0; g < comp.num_groups(); ++g) {
        const double sc = cof[g * nattrs + masked_pos];
        if (sc == 0.0) continue;
        const Interval& iv = comp.rects[g * nattrs + masked_pos];
        total += sc * ps.RangeSum(iv.lo, iv.hi);
      }
    } else {
      const std::vector<double>& dps = fc.delta_prod[c];
      const double* factors = fc.rs_factor[c].data();
      for (size_t g = 0; g < comp.num_groups(); ++g) {
        double prod = dps[g];
        if (prod == 0.0) continue;
        const Interval* rect = &comp.rects[g * nattrs];
        for (size_t i = 0; i < nattrs; ++i) {
          const AttrId a = comp.attrs[i];
          prod *= ws->attr_masked_[a]
                      ? ws->masked_prefix_[a].RangeSum(rect[i].lo, rect[i].hi)
                      : factors[g * nattrs + i];
          if (prod == 0.0) break;
        }
        total += prod;
      }
    }
    out.comp_value[c] = total;
  }

  out.value = out.free_product;
  for (double v : out.comp_value) out.value *= v;
  return out;
}

std::vector<double> CompressedPolynomial::MaskedAlphaDerivatives(
    const ModelState& state, const MaskedEval& eval, AttrId a,
    EvalWorkspace* ws) const {
  (void)state;
  const EvalWorkspace::FactorCache& fc = *ws->cache_;
  const uint32_t na = domain_sizes_[a];
  const int c = attr_component_[a];

  if (c < 0) {
    double rest = 1.0;
    for (AttrId f : free_attrs_) {
      if (f != a) rest *= ws->eff_total_[f];
    }
    for (double v : eval.comp_value) rest *= v;
    return std::vector<double>(na, rest);
  }

  const Component& comp = components_[c];
  const size_t pos = attr_local_[a];
  const size_t nattrs = comp.attrs.size();
  double outer = eval.free_product;
  for (size_t cc = 0; cc < eval.comp_value.size(); ++cc) {
    if (static_cast<int>(cc) != c) outer *= eval.comp_value[cc];
  }

  DiffArray diff(na);
  double base = 1.0;
  bool others_masked = false;
  for (size_t i = 0; i < nattrs; ++i) {
    if (i == pos) continue;
    base *= ws->eff_total_[comp.attrs[i]];
    others_masked |= ws->attr_masked_[comp.attrs[i]] != 0;
  }
  diff.RangeAdd(0, na - 1, base);
  if (!others_masked) {
    // No other attribute of this component is constrained: the cached
    // skip-position cofactors ARE the group cofactors.
    const double* cof = fc.skip_cof[c].data();
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      const double sc = cof[g * nattrs + pos];
      if (sc == 0.0) continue;
      const Interval& iv = comp.rects[g * nattrs + pos];
      diff.RangeAdd(iv.lo, iv.hi, sc);
    }
  } else {
    const std::vector<double>& dps = fc.delta_prod[c];
    const double* factors = fc.rs_factor[c].data();
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      double cof = dps[g];
      if (cof == 0.0) continue;
      const Interval* rect = &comp.rects[g * nattrs];
      for (size_t i = 0; i < nattrs; ++i) {
        if (i == pos) continue;
        const AttrId ai = comp.attrs[i];
        cof *= ws->attr_masked_[ai]
                   ? ws->masked_prefix_[ai].RangeSum(rect[i].lo, rect[i].hi)
                   : factors[g * nattrs + i];
        if (cof == 0.0) break;
      }
      if (cof != 0.0) diff.RangeAdd(rect[pos].lo, rect[pos].hi, cof);
    }
  }
  std::vector<double> out = diff.Finalize();
  for (double& v : out) v *= outer;
  return out;
}

double CompressedPolynomial::PointOverrideValue(
    const ModelState& state, const MaskedEval& eval,
    const std::vector<AttrId>& attrs, const std::vector<Code>& codes,
    EvalWorkspace* ws) const {
  const EvalWorkspace::FactorCache& fc = *ws->cache_;
  // Keys are 1-3 attributes; linear scans beat any map here.
  auto key_code = [&](AttrId a, Code* v) {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) {
        *v = codes[i];
        return true;
      }
    }
    return false;
  };

  double value = 1.0;
  for (AttrId f : free_attrs_) {
    Code v;
    value *= key_code(f, &v) ? state.alpha[f][v] : ws->eff_total_[f];
  }

  // Reuses the workspace scratch (the mask's touched-set from
  // MaskedEvaluate is not needed anymore — the walks below key off
  // attr_masked_); avoids a per-key allocation in group-by loops.
  std::vector<uint8_t>& comp_touched = ws->comp_scratch_;
  comp_touched.assign(components_.size(), 0);
  for (AttrId a : attrs) {
    if (attr_component_[a] >= 0) comp_touched[attr_component_[a]] = 1;
  }
  for (size_t c = 0; c < components_.size(); ++c) {
    if (!comp_touched[c]) {
      value *= eval.comp_value[c];
      continue;
    }
    const Component& comp = components_[c];
    const size_t nattrs = comp.attrs.size();
    double base = 1.0;
    size_t num_special = 0;  // positions that are keyed or mask-constrained
    size_t special_pos = 0;
    bool special_is_key = false;
    Code special_code = 0;
    for (size_t i = 0; i < nattrs; ++i) {
      const AttrId a = comp.attrs[i];
      Code v;
      if (key_code(a, &v)) {
        base *= state.alpha[a][v];
        ++num_special;
        special_pos = i;
        special_is_key = true;
        special_code = v;
      } else {
        base *= ws->eff_total_[a];
        if (ws->attr_masked_[a]) {
          ++num_special;
          special_pos = i;
          special_is_key = false;
        }
      }
    }
    double total = base;
    if (num_special == 1 && special_is_key) {
      // One keyed attribute, nothing else constrained: each group is the
      // cached skip-position cofactor times a point lookup.
      const AttrId a = comp.attrs[special_pos];
      const double alpha_v = state.alpha[a][special_code];
      const double* cof = fc.skip_cof[c].data();
      for (size_t g = 0; g < comp.num_groups(); ++g) {
        const double sc = cof[g * nattrs + special_pos];
        if (sc == 0.0) continue;
        const Interval& iv = comp.rects[g * nattrs + special_pos];
        if (iv.Contains(special_code)) total += sc * alpha_v;
      }
    } else {
      const std::vector<double>& dps = fc.delta_prod[c];
      const double* factors = fc.rs_factor[c].data();
      for (size_t g = 0; g < comp.num_groups(); ++g) {
        double prod = dps[g];
        if (prod == 0.0) continue;
        const Interval* rect = &comp.rects[g * nattrs];
        for (size_t i = 0; i < nattrs; ++i) {
          const AttrId a = comp.attrs[i];
          Code v;
          if (key_code(a, &v)) {
            prod *= rect[i].Contains(v) ? state.alpha[a][v] : 0.0;
          } else if (ws->attr_masked_[a]) {
            prod *= ws->masked_prefix_[a].RangeSum(rect[i].lo, rect[i].hi);
          } else {
            prod *= factors[g * nattrs + i];
          }
          if (prod == 0.0) break;
        }
        total += prod;
      }
    }
    value *= total;
  }
  return value;
}

size_t CompressedPolynomial::NumGroups() const {
  size_t total = 0;
  for (const auto& comp : components_) total += comp.num_groups();
  return total;
}

size_t CompressedPolynomial::CompressedSize() const {
  size_t total = free_attrs_.size();
  for (const auto& comp : components_) {
    total += comp.attrs.size();  // base term factors
    total += comp.rects.size() + comp.stats_flat.size();
  }
  return total;
}

double CompressedPolynomial::UncompressedTermCount() const {
  double d = 1.0;
  for (uint32_t n : domain_sizes_) d *= n;
  return d;
}

size_t CompressedPolynomial::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& comp : components_) {
    bytes += comp.rects.size() * sizeof(Interval);
    bytes += comp.stats_flat.size() * sizeof(uint32_t);
    bytes += comp.stats_offset.size() * sizeof(uint32_t);
    for (const auto& v : comp.stat_groups) bytes += v.size() * sizeof(uint32_t);
  }
  bytes += delta_local_.size() * sizeof(uint32_t);
  bytes += attr_local_.size() * sizeof(size_t);
  return bytes;
}

size_t CompressedPolynomial::MaxSetSize() const {
  size_t best = 0;
  for (const auto& comp : components_) {
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      best = std::max<size_t>(
          best, comp.stats_offset[g + 1] - comp.stats_offset[g]);
    }
  }
  return best;
}

}  // namespace entropydb
