#include "maxent/polynomial.h"

#include <algorithm>
#include <numeric>

namespace entropydb {

namespace {

/// Union-find over attribute ids, used to split statistics into connected
/// components.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Status CompressedPolynomial::EnumerateGroups(const VariableRegistry& reg,
                                             Component* comp,
                                             size_t max_groups) {
  const size_t nattrs = comp->attrs.size();
  // Local attribute position lookup.
  std::unordered_map<AttrId, size_t> pos;
  for (size_t i = 0; i < nattrs; ++i) pos[comp->attrs[i]] = i;

  // Full-domain rectangle template.
  std::vector<Interval> full(nattrs);
  for (size_t i = 0; i < nattrs; ++i) {
    full[i] = Interval{0, reg.domain_size(comp->attrs[i]) - 1};
  }

  comp->stats_offset.push_back(0);

  // Applies stat `sid`'s ranges to `rect`; false when empty.
  auto intersect = [&](const MultiDimStatistic& s,
                       std::vector<Interval>* rect) {
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      size_t p = pos.at(s.attrs[i]);
      (*rect)[p] = (*rect)[p].Intersect(s.ranges[i]);
      if ((*rect)[p].empty()) return false;
    }
    return true;
  };

  // Ordered DFS over compatible sets: each set S = {s_1 < s_2 < ...} is
  // reached exactly once, by inserting its members in increasing order.
  // Subsets of compatible sets are compatible, so pruning on an empty
  // intersection is exhaustive, not heuristic.
  std::vector<uint32_t> set_stack;
  std::vector<std::vector<Interval>> rect_stack;

  // Emits the current set as a group.
  auto emit = [&]() -> Status {
    if (comp->num_groups() >= max_groups) {
      return Status::ResourceExhausted(
          "compressed polynomial exceeds max_groups = " +
          std::to_string(max_groups) +
          "; reduce the statistic budget or raise the cap");
    }
    const auto& rect = rect_stack.back();
    comp->rects.insert(comp->rects.end(), rect.begin(), rect.end());
    comp->stats_flat.insert(comp->stats_flat.end(), set_stack.begin(),
                            set_stack.end());
    comp->stats_offset.push_back(
        static_cast<uint32_t>(comp->stats_flat.size()));
    uint32_t g = static_cast<uint32_t>(comp->num_groups() - 1);
    for (uint32_t sid : set_stack) {
      // Local index of sid within comp->stats (sorted): binary search.
      size_t local = std::lower_bound(comp->stats.begin(), comp->stats.end(),
                                      sid) -
                     comp->stats.begin();
      comp->stat_groups[local].push_back(g);
    }
    return Status::OK();
  };

  // Depth-first extension starting after local stat index `from`.
  // Implemented iteratively-recursively via an explicit lambda.
  struct Frame {
    size_t next;  // next local stat index to try
  };
  std::vector<Frame> frames;

  // Seed: empty set with full rectangle; do NOT emit (the base term is
  // handled separately by the evaluator).
  rect_stack.push_back(full);
  frames.push_back(Frame{0});

  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.next >= comp->stats.size()) {
      frames.pop_back();
      rect_stack.pop_back();
      if (!set_stack.empty()) set_stack.pop_back();
      continue;
    }
    size_t idx = f.next++;
    uint32_t sid = comp->stats[idx];
    std::vector<Interval> rect = rect_stack.back();
    if (!intersect(reg.multi_dim(sid), &rect)) continue;
    // Found a compatible extension: record it and descend.
    set_stack.push_back(sid);
    rect_stack.push_back(std::move(rect));
    RETURN_NOT_OK(emit());
    frames.push_back(Frame{idx + 1});
  }
  return Status::OK();
}

Result<CompressedPolynomial> CompressedPolynomial::Build(
    const VariableRegistry& reg, PolynomialOptions opts) {
  CompressedPolynomial poly;
  poly.domain_sizes_ = reg.domain_sizes();
  const size_t m = reg.num_attributes();
  const size_t k = reg.num_multi_dim();

  // 1. Connected components of the statistic/attribute graph.
  UnionFind uf(m);
  for (size_t j = 0; j < k; ++j) {
    const auto& s = reg.multi_dim(j);
    for (size_t i = 1; i < s.attrs.size(); ++i) {
      uf.Union(s.attrs[0], s.attrs[i]);
    }
  }
  // Attributes touched by at least one statistic.
  std::vector<bool> touched(m, false);
  for (size_t j = 0; j < k; ++j) {
    for (AttrId a : reg.multi_dim(j).attrs) touched[a] = true;
  }
  std::unordered_map<size_t, int> root_to_comp;
  poly.attr_component_.assign(m, -1);
  for (AttrId a = 0; a < m; ++a) {
    if (!touched[a]) {
      poly.free_attrs_.push_back(a);
      continue;
    }
    size_t root = uf.Find(a);
    auto it = root_to_comp.find(root);
    int c;
    if (it == root_to_comp.end()) {
      c = static_cast<int>(poly.components_.size());
      root_to_comp.emplace(root, c);
      poly.components_.emplace_back();
    } else {
      c = it->second;
    }
    poly.attr_component_[a] = c;
    poly.components_[c].attrs.push_back(a);
  }

  // 2. Assign statistics to components.
  poly.delta_component_.assign(k, -1);
  for (size_t j = 0; j < k; ++j) {
    int c = poly.attr_component_[reg.multi_dim(j).attrs[0]];
    poly.delta_component_[j] = c;
    poly.components_[c].stats.push_back(static_cast<uint32_t>(j));
  }
  for (auto& comp : poly.components_) {
    std::sort(comp.attrs.begin(), comp.attrs.end());
    std::sort(comp.stats.begin(), comp.stats.end());
    comp.stat_groups.resize(comp.stats.size());
  }

  // 3. Enumerate compatible statistic sets per component, respecting a
  // global budget.
  size_t remaining = opts.max_groups;
  for (auto& comp : poly.components_) {
    RETURN_NOT_OK(EnumerateGroups(reg, &comp, remaining));
    remaining -= comp.num_groups();
  }

  // 4. Position lookups for derivative passes.
  poly.attr_pos_.resize(poly.components_.size());
  for (size_t c = 0; c < poly.components_.size(); ++c) {
    for (size_t i = 0; i < poly.components_[c].attrs.size(); ++i) {
      poly.attr_pos_[c][poly.components_[c].attrs[i]] = i;
    }
  }
  return poly;
}

CompressedPolynomial::EvalContext CompressedPolynomial::Evaluate(
    const ModelState& state, const QueryMask& mask) const {
  EvalContext ctx;
  const size_t m = domain_sizes_.size();
  ctx.prefix.resize(m);
  ctx.attr_total.resize(m);

  // Per-attribute masked prefix sums; the only O(N_i) work per evaluation.
  std::vector<double> buf;
  for (AttrId a = 0; a < m; ++a) {
    const auto& alpha = state.alpha[a];
    if (mask.IsAny(a)) {
      ctx.prefix[a].Build(alpha);
    } else {
      buf.assign(alpha.size(), 0.0);
      for (Code v = 0; v < alpha.size(); ++v) {
        if (mask.Allows(a, v)) buf[v] = alpha[v];
      }
      ctx.prefix[a].Build(buf);
    }
    ctx.attr_total[a] = ctx.prefix[a].Total();
  }

  ctx.free_product = 1.0;
  for (AttrId a : free_attrs_) ctx.free_product *= ctx.attr_total[a];

  ctx.comp_value.resize(components_.size());
  for (size_t c = 0; c < components_.size(); ++c) {
    const Component& comp = components_[c];
    // Base term (S = {}) plus every compatible-set summand.
    double base = 1.0;
    for (AttrId a : comp.attrs) base *= ctx.attr_total[a];
    double total = base;
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      total += GroupProduct(comp, g, ctx, state, SIZE_MAX, UINT32_MAX);
    }
    ctx.comp_value[c] = total;
  }

  ctx.value = ctx.free_product;
  for (double v : ctx.comp_value) ctx.value *= v;
  return ctx;
}

CompressedPolynomial::EvalContext CompressedPolynomial::EvaluateUnmasked(
    const ModelState& state) const {
  return Evaluate(state, QueryMask(domain_sizes_.size()));
}

double CompressedPolynomial::GroupProduct(const Component& comp, size_t g,
                                          const EvalContext& ctx,
                                          const ModelState& state,
                                          size_t skip_pos,
                                          uint32_t skip_stat) const {
  const size_t nattrs = comp.attrs.size();
  double prod = 1.0;
  const Interval* rect = &comp.rects[g * nattrs];
  for (size_t i = 0; i < nattrs; ++i) {
    if (i == skip_pos) continue;
    prod *= ctx.prefix[comp.attrs[i]].RangeSum(rect[i].lo, rect[i].hi);
    if (prod == 0.0) return 0.0;
  }
  for (uint32_t s = comp.stats_offset[g]; s < comp.stats_offset[g + 1]; ++s) {
    uint32_t sid = comp.stats_flat[s];
    if (sid == skip_stat) continue;
    prod *= state.delta[sid] - 1.0;
    if (prod == 0.0) return 0.0;
  }
  return prod;
}

std::vector<double> CompressedPolynomial::AlphaDerivatives(
    const ModelState& state, const EvalContext& ctx, AttrId a) const {
  const uint32_t na = domain_sizes_[a];
  const int c = attr_component_[a];

  if (c < 0) {
    // Free attribute: P = T_a * Rest, so dP/dalpha_{a,v} = Rest for all v.
    double rest = 1.0;
    for (AttrId f : free_attrs_) {
      if (f != a) rest *= ctx.attr_total[f];
    }
    for (double v : ctx.comp_value) rest *= v;
    return std::vector<double>(na, rest);
  }

  const Component& comp = components_[c];
  const size_t pos = attr_pos_[c].at(a);
  const size_t nattrs = comp.attrs.size();
  const double outer = OuterProduct(ctx, c);

  DiffArray diff(na);
  // Base term contributes prod of the other attributes' totals to every v.
  double base = 1.0;
  for (size_t i = 0; i < nattrs; ++i) {
    if (i != pos) base *= ctx.attr_total[comp.attrs[i]];
  }
  diff.RangeAdd(0, na - 1, base);
  // Each group contributes its cofactor on the group's interval of `a`.
  for (size_t g = 0; g < comp.num_groups(); ++g) {
    const Interval& iv = comp.rects[g * nattrs + pos];
    double cof = GroupProduct(comp, g, ctx, state, pos, UINT32_MAX);
    if (cof != 0.0) diff.RangeAdd(iv.lo, iv.hi, cof);
  }
  std::vector<double> out = diff.Finalize();
  for (double& v : out) v *= outer;
  return out;
}

double CompressedPolynomial::DeltaDerivativeLocal(const ModelState& state,
                                                  const EvalContext& ctx,
                                                  uint32_t j) const {
  const int c = delta_component_[j];
  const Component& comp = components_[c];
  size_t local = std::lower_bound(comp.stats.begin(), comp.stats.end(), j) -
                 comp.stats.begin();
  double sum = 0.0;
  for (uint32_t g : comp.stat_groups[local]) {
    sum += GroupProduct(comp, g, ctx, state, SIZE_MAX, j);
  }
  return sum;
}

double CompressedPolynomial::DeltaDerivative(const ModelState& state,
                                             const EvalContext& ctx,
                                             uint32_t j) const {
  return OuterProduct(ctx, delta_component_[j]) *
         DeltaDerivativeLocal(state, ctx, j);
}

double CompressedPolynomial::OuterProduct(const EvalContext& ctx,
                                          int comp) const {
  double prod = ctx.free_product;
  for (size_t c = 0; c < ctx.comp_value.size(); ++c) {
    if (static_cast<int>(c) != comp) prod *= ctx.comp_value[c];
  }
  return prod;
}

size_t CompressedPolynomial::NumGroups() const {
  size_t total = 0;
  for (const auto& comp : components_) total += comp.num_groups();
  return total;
}

size_t CompressedPolynomial::CompressedSize() const {
  size_t total = free_attrs_.size();
  for (const auto& comp : components_) {
    total += comp.attrs.size();  // base term factors
    total += comp.rects.size() + comp.stats_flat.size();
  }
  return total;
}

double CompressedPolynomial::UncompressedTermCount() const {
  double d = 1.0;
  for (uint32_t n : domain_sizes_) d *= n;
  return d;
}

size_t CompressedPolynomial::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& comp : components_) {
    bytes += comp.rects.size() * sizeof(Interval);
    bytes += comp.stats_flat.size() * sizeof(uint32_t);
    bytes += comp.stats_offset.size() * sizeof(uint32_t);
    for (const auto& v : comp.stat_groups) bytes += v.size() * sizeof(uint32_t);
  }
  return bytes;
}

size_t CompressedPolynomial::MaxSetSize() const {
  size_t best = 0;
  for (const auto& comp : components_) {
    for (size_t g = 0; g < comp.num_groups(); ++g) {
      best = std::max<size_t>(
          best, comp.stats_offset[g + 1] - comp.stats_offset[g]);
    }
  }
  return best;
}

}  // namespace entropydb
