#include "maxent/gradient_solver.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace entropydb {

double GradientMaxEntSolver::Dual(const ModelState& state,
                                  double p_value) const {
  double psi = 0.0;
  for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
    for (Code v = 0; v < reg_.domain_size(a); ++v) {
      const double s = reg_.OneDTarget(a, v);
      if (s > 0.0 && state.alpha[a][v] > 0.0) {
        psi += s * std::log(state.alpha[a][v]);
      }
    }
  }
  for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
    const double s = reg_.multi_dim(j).target;
    if (s > 0.0 && state.delta[j] > 0.0) {
      psi += s * std::log(state.delta[j]);
    }
  }
  return psi - reg_.n() * std::log(p_value);
}

Result<SolverReport> GradientMaxEntSolver::Solve(ModelState* state) const {
  Timer timer;
  SolverReport report;
  const double n = reg_.n();
  double step = opts_.step;

  auto ctx = poly_.EvaluateUnmasked(*state);
  if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
    return Status::FailedPrecondition(
        "polynomial non-positive at the gradient solver's start");
  }
  double psi = Dual(*state, ctx.value);

  for (size_t it = 0; it < opts_.max_iterations; ++it) {
    // Gradient in theta-space: g_j = (s_j - E_j) / n (normalized so the
    // step size is scale-free). One cofactor sweep produces every
    // derivative — alpha and delta alike — instead of a group walk per
    // attribute family plus one per statistic.
    const auto derivs = poly_.AllDerivatives(*state, ctx);
    std::vector<std::vector<double>> alpha_grad(reg_.num_attributes());
    std::vector<double> delta_grad(reg_.num_multi_dim(), 0.0);
    double max_err = 0.0;
    for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
      const std::vector<double>& cof = derivs.alpha[a];
      alpha_grad[a].resize(reg_.domain_size(a), 0.0);
      for (Code v = 0; v < reg_.domain_size(a); ++v) {
        const double s = reg_.OneDTarget(a, v);
        if (s <= 0.0) {
          state->alpha[a][v] = 0.0;  // pinned
          continue;
        }
        const double e = n * state->alpha[a][v] * cof[v] / ctx.value;
        alpha_grad[a][v] = (s - e) / n;
        max_err = std::max(max_err, std::abs(s - e) / n);
      }
    }
    for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
      const double s = reg_.multi_dim(j).target;
      if (s <= 0.0) {
        state->delta[j] = 0.0;
        continue;
      }
      const double e = n * state->delta[j] * derivs.delta[j] / ctx.value;
      delta_grad[j] = (s - e) / n;
      max_err = std::max(max_err, std::abs(s - e) / n);
    }

    report.iterations = it + 1;
    report.final_error = max_err;
    if (opts_.record_trace) report.error_trace.push_back(max_err);
    if (max_err < opts_.tolerance) {
      report.converged = true;
      break;
    }

    // Backtracking ascent step on theta = ln(alpha):
    // alpha <- alpha * exp(step * g).
    ModelState trial = *state;
    bool improved = false;
    for (int attempt = 0; attempt < 20; ++attempt) {
      for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
        for (Code v = 0; v < reg_.domain_size(a); ++v) {
          if (state->alpha[a][v] > 0.0) {
            trial.alpha[a][v] =
                state->alpha[a][v] * std::exp(step * alpha_grad[a][v]);
          }
        }
      }
      for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
        if (state->delta[j] > 0.0) {
          trial.delta[j] = state->delta[j] * std::exp(step * delta_grad[j]);
        }
      }
      auto trial_ctx = poly_.EvaluateUnmasked(trial);
      if (trial_ctx.value > 0.0 && std::isfinite(trial_ctx.value)) {
        const double trial_psi = Dual(trial, trial_ctx.value);
        if (trial_psi > psi) {
          *state = std::move(trial);
          ctx = std::move(trial_ctx);
          psi = trial_psi;
          improved = true;
          // Gentle step growth after a successful move.
          step = std::min(step / opts_.backoff * 0.9 + step * 0.1, 4.0);
          break;
        }
        trial = *state;  // reset and retry with a smaller step
      }
      step *= opts_.backoff;
      if (step < 1e-12) break;
    }
    if (!improved) break;  // line search stalled: report what we reached
  }
  report.wall_seconds = timer.ElapsedSeconds();
  report.converged = report.final_error < opts_.tolerance;
  return report;
}

}  // namespace entropydb
