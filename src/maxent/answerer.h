#ifndef ENTROPYDB_MAXENT_ANSWERER_H_
#define ENTROPYDB_MAXENT_ANSWERER_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "maxent/polynomial.h"
#include "maxent/variable_registry.h"
#include "maxent/workspace_pool.h"
#include "query/aggregate.h"
#include "query/counting_query.h"

namespace entropydb {

/// \brief Answers linear counting queries on a solved MaxEnt model via the
/// optimized evaluation of Sec 4.2: zero the excluded 1-D variables,
/// evaluate P once, scale by n / P.
///
/// Construction warms a WorkspacePool: the unmasked evaluation and
/// per-group factor products are computed once and shared (immutably) by
/// every pooled workspace; each query then claims a free workspace with one
/// atomic exchange, rebuilds prefix sums only for the attributes it
/// actually constrains, and re-walks only the touched connected components.
/// Query entry points are safe to call concurrently and scale with cores —
/// no internal mutex; see maxent/workspace_pool.h. Because all pool members
/// share one factor cache, estimates are bitwise-stable regardless of
/// thread interleaving.
class QueryAnswerer {
 public:
  /// `state` must already be solved; the unmasked P and the per-group
  /// factor caches are computed here, once.
  QueryAnswerer(const VariableRegistry& reg, const CompressedPolynomial& poly,
                const ModelState& state);

  /// E[<q, I>] (and variance) for a conjunctive counting query — the
  /// COUNT(*) primitive every aggregate builds on.
  Result<QueryEstimate> Answer(const CountingQuery& q) const;

  /// The unified aggregate dispatcher for the kinds a single model can
  /// answer: COUNT, SUM, AVG. Every result carries the SUM/COUNT moment
  /// legs plus their covariance under the model's multinomial law over
  /// the aggregated attribute's cells (X_v ~ Multinomial(n, p_v)):
  ///
  ///   E[S]      = n sum_v w_v p_v
  ///   Var S     = n (sum_v w_v^2 p_v - (sum_v w_v p_v)^2)
  ///   Var C     = n P (1 - P),   P = sum over matching v of p_v
  ///   Cov(S, C) = n (sum_v w_v p_v) (1 - P)
  ///
  /// AVG's headline estimate is the ratio S/C with the delta-method
  /// variance Var(S/C) ~= (Var S - 2 R Cov + R^2 Var C) / C^2 — and
  /// because the legs and the covariance are SURFACED, not just consumed,
  /// a sharded store can merge per-shard legs additively and apply the
  /// same delta method once across shards without dropping the cross term
  /// (docs/ESTIMATORS.md "Cross-shard merging").
  ///
  /// QUANTILE/TOPK/JOIN kinds are derived at the engine facade from
  /// group-by marginals, not here — kNotSupported.
  Result<QueryResult> Answer(const AggregateQuery& q) const;

  /// Point-group-by: for each listed code combination of `attrs`, the
  /// estimate of COUNT(*) at that point with `base` as the residual filter.
  /// Mirrors the paper's SELECT A.., COUNT(*) GROUP BY templates.
  /// Vectorized: ONE masked evaluation (group-by attributes relaxed) is
  /// shared by every key; each key then re-walks only the components its
  /// attributes touch with point lookups in place of range sums — no
  /// per-key prefix-sum rebuilds.
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys,
      const CountingQuery& base) const;

  /// Whole-attribute group-by: E[COUNT(*) | base AND A_a = v] for every
  /// value v of attribute `a`, computed in ONE masked evaluation plus one
  /// batched derivative pass (by multilinearity,
  /// E[count(base AND A_a = v)] = n * alpha_{a,v} * dP[mask]/dalpha_{a,v}
  /// / P). Far cheaper than |D_a| point queries; this is how the paper's
  /// "GROUP BY A ORDER BY cnt LIMIT k" template should be evaluated.
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base) const;

  /// Unmasked P (the normalization constant's base).
  double FullPolynomialValue() const { return full_value_; }

  /// The underlying workspace pool (e.g. for capacity introspection).
  const WorkspacePool& workspace_pool() const { return pool_; }

 private:
  const VariableRegistry& reg_;
  const CompressedPolynomial& poly_;
  const ModelState& state_;
  /// Per-thread evaluation workspaces sharing one warmed factor cache
  /// (mutable: queries are logically const).
  mutable WorkspacePool pool_;
  double full_value_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_ANSWERER_H_
