#ifndef ENTROPYDB_MAXENT_ANSWERER_H_
#define ENTROPYDB_MAXENT_ANSWERER_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "maxent/polynomial.h"
#include "maxent/variable_registry.h"
#include "maxent/workspace_pool.h"
#include "query/counting_query.h"

namespace entropydb {

/// \brief A probabilistic query answer: expectation plus dispersion.
///
/// Under the solved MaxEnt model the n tuples are i.i.d. draws from the
/// tuple distribution (the partition function factorizes as Z = P^n,
/// Lemma 3.1), so any counting query is Binomial(n, p) with
/// p = P[mask] / P. That yields the closed-form variance the paper lists as
/// its single-statistic formula (Sec 7).
struct QueryEstimate {
  double expectation = 0.0;
  double variance = 0.0;

  double StdDev() const;
  /// Central `z`-sigma interval, clamped to [0, n].
  std::pair<double, double> ConfidenceInterval(double z, double n) const;
  /// Expectation rounded to the nearest integer count (the paper rounds
  /// sub-0.5 estimates to zero when detecting nonexistent values, Sec 4.3).
  double RoundedCount() const;
};

/// \brief Answers linear counting queries on a solved MaxEnt model via the
/// optimized evaluation of Sec 4.2: zero the excluded 1-D variables,
/// evaluate P once, scale by n / P.
///
/// Construction warms a WorkspacePool: the unmasked evaluation and
/// per-group factor products are computed once and shared (immutably) by
/// every pooled workspace; each query then claims a free workspace with one
/// atomic exchange, rebuilds prefix sums only for the attributes it
/// actually constrains, and re-walks only the touched connected components.
/// Query entry points are safe to call concurrently and scale with cores —
/// no internal mutex; see maxent/workspace_pool.h. Because all pool members
/// share one factor cache, estimates are bitwise-stable regardless of
/// thread interleaving.
class QueryAnswerer {
 public:
  /// `state` must already be solved; the unmasked P and the per-group
  /// factor caches are computed here, once.
  QueryAnswerer(const VariableRegistry& reg, const CompressedPolynomial& poly,
                const ModelState& state);

  /// E[<q, I>] (and variance) for a conjunctive counting query.
  Result<QueryEstimate> Answer(const CountingQuery& q) const;

  /// Point-group-by: for each listed code combination of `attrs`, the
  /// estimate of COUNT(*) at that point with `base` as the residual filter.
  /// Mirrors the paper's SELECT A.., COUNT(*) GROUP BY templates.
  /// Vectorized: ONE masked evaluation (group-by attributes relaxed) is
  /// shared by every key; each key then re-walks only the components its
  /// attributes touch with point lookups in place of range sums — no
  /// per-key prefix-sum rebuilds.
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys,
      const CountingQuery& base) const;

  /// Whole-attribute group-by: E[COUNT(*) | base AND A_a = v] for every
  /// value v of attribute `a`, computed in ONE masked evaluation plus one
  /// batched derivative pass (by multilinearity,
  /// E[count(base AND A_a = v)] = n * alpha_{a,v} * dP[mask]/dalpha_{a,v}
  /// / P). Far cheaper than |D_a| point queries; this is how the paper's
  /// "GROUP BY A ORDER BY cnt LIMIT k" template should be evaluated.
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base) const;

  /// SUM aggregate of a per-value weight over one attribute:
  /// E[sum over matching rows of weight(A_a)] — a general linear query
  /// (Sec 3.1). `weights` has one entry per value of `a` (e.g. bucket
  /// midpoints for a bucketized numeric attribute). The variance is
  /// Var S = n (sum_v w_v^2 p_v - (sum_v w_v p_v)^2) under the model's
  /// multinomial law over the matching cells (cell anticorrelation
  /// included — the same moments AnswerAvg's delta method uses).
  Result<QueryEstimate> AnswerSum(AttrId a,
                                  const std::vector<double>& weights,
                                  const CountingQuery& q) const;

  /// AVG aggregate: AnswerSum / AnswerCount (returns 0 when the matching
  /// count is 0). The variance is the delta-method ratio variance
  /// Var(S/C) ~= (Var S - 2 R Cov(S,C) + R^2 Var C) / C^2 with the moments
  /// taken under the model's multinomial law over the matching values
  /// (X_v ~ Multinomial(n, p_v) cell counts), so the anticorrelation
  /// between cells is accounted for rather than assumed away.
  Result<QueryEstimate> AnswerAvg(AttrId a,
                                  const std::vector<double>& weights,
                                  const CountingQuery& q) const;

  /// Unmasked P (the normalization constant's base).
  double FullPolynomialValue() const { return full_value_; }

  /// The underlying workspace pool (e.g. for capacity introspection).
  const WorkspacePool& workspace_pool() const { return pool_; }

 private:
  const VariableRegistry& reg_;
  const CompressedPolynomial& poly_;
  const ModelState& state_;
  /// Per-thread evaluation workspaces sharing one warmed factor cache
  /// (mutable: queries are logically const).
  mutable WorkspacePool pool_;
  double full_value_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_ANSWERER_H_
