#include "maxent/dense_model.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

namespace {
std::vector<uint32_t> CopySizes(const VariableRegistry& reg) {
  return reg.domain_sizes();
}
}  // namespace

Result<DenseMaxEntModel> DenseMaxEntModel::Create(const VariableRegistry& reg,
                                                  uint64_t max_tuples) {
  TupleSpace space(CopySizes(reg));
  if (space.size() > max_tuples) {
    return Status::ResourceExhausted(
        "dense model refused: |Tup| = " + std::to_string(space.size()) +
        " exceeds cap " + std::to_string(max_tuples));
  }
  return DenseMaxEntModel(reg);
}

double DenseMaxEntModel::Weight(const ModelState& state,
                                const std::vector<Code>& tuple, int skip_attr,
                                int skip_stat) const {
  double w = 1.0;
  for (AttrId a = 0; a < reg_->num_attributes(); ++a) {
    if (static_cast<int>(a) == skip_attr) continue;
    w *= state.alpha[a][tuple[a]];
    if (w == 0.0) return 0.0;
  }
  for (uint32_t j = 0; j < reg_->num_multi_dim(); ++j) {
    if (static_cast<int>(j) == skip_stat) continue;
    if (reg_->multi_dim(j).ContainsTuple(tuple)) w *= state.delta[j];
    if (w == 0.0) return 0.0;
  }
  return w;
}

double DenseMaxEntModel::Evaluate(const ModelState& state,
                                  const QueryMask& mask) const {
  double p = 0.0;
  for (uint64_t t = 0; t < space_.size(); ++t) {
    auto tuple = space_.TupleAt(t);
    bool allowed = true;
    for (AttrId a = 0; a < reg_->num_attributes(); ++a) {
      if (!mask.Allows(a, tuple[a])) {
        allowed = false;
        break;
      }
    }
    if (allowed) p += Weight(state, tuple, -1, -1);
  }
  return p;
}

double DenseMaxEntModel::AlphaDerivative(const ModelState& state, AttrId a,
                                         Code v) const {
  double d = 0.0;
  for (uint64_t t = 0; t < space_.size(); ++t) {
    auto tuple = space_.TupleAt(t);
    if (tuple[a] != v) continue;
    d += Weight(state, tuple, static_cast<int>(a), -1);
  }
  return d;
}

double DenseMaxEntModel::DeltaDerivative(const ModelState& state,
                                         uint32_t j) const {
  double d = 0.0;
  for (uint64_t t = 0; t < space_.size(); ++t) {
    auto tuple = space_.TupleAt(t);
    if (!reg_->multi_dim(j).ContainsTuple(tuple)) continue;
    d += Weight(state, tuple, -1, static_cast<int>(j));
  }
  return d;
}

double DenseMaxEntModel::CountEstimate(const ModelState& state,
                                     const CountingQuery& q) const {
  const double full = EvaluateUnmasked(state);
  if (!(full > 0.0)) return 0.0;
  QueryMask mask = QueryMask::FromQuery(q, reg_->domain_sizes());
  return reg_->n() * Evaluate(state, mask) / full;
}

double DenseMaxEntModel::TupleProbability(
    const ModelState& state, const std::vector<Code>& tuple) const {
  const double full = EvaluateUnmasked(state);
  if (!(full > 0.0)) return 0.0;
  return Weight(state, tuple, -1, -1) / full;
}

DenseSolveReport DenseMaxEntModel::SolveNaive(ModelState* state,
                                              size_t max_iterations,
                                              double tolerance) const {
  const double n = reg_->n();
  DenseSolveReport report;
  for (size_t it = 0; it < max_iterations; ++it) {
    double max_err = 0.0;
    // 1-D variables.
    for (AttrId a = 0; a < reg_->num_attributes(); ++a) {
      for (Code v = 0; v < reg_->domain_size(a); ++v) {
        const double s = reg_->OneDTarget(a, v);
        double& alpha = state->alpha[a][v];
        if (s <= 0.0) {
          alpha = 0.0;
          continue;
        }
        if (s >= n) continue;
        const double av = AlphaDerivative(*state, a, v);
        if (av <= 0.0) continue;
        const double p = EvaluateUnmasked(*state);
        const double expected = alpha * av / p * n;
        max_err = std::max(max_err, std::abs(expected - s) / n);
        const double b = p - alpha * av;
        alpha = s * b / ((n - s) * av);
      }
    }
    // Multi-dim variables.
    for (uint32_t j = 0; j < reg_->num_multi_dim(); ++j) {
      const double s = reg_->multi_dim(j).target;
      double& delta = state->delta[j];
      if (s <= 0.0) {
        delta = 0.0;
        continue;
      }
      if (s >= n) continue;
      const double av = DeltaDerivative(*state, j);
      if (av <= 0.0) continue;
      const double p = EvaluateUnmasked(*state);
      const double expected = delta * av / p * n;
      max_err = std::max(max_err, std::abs(expected - s) / n);
      const double b = p - delta * av;
      delta = s * b / ((n - s) * av);
    }
    report.iterations = it + 1;
    report.final_error = max_err;
    if (max_err < tolerance) {
      report.converged = true;
      break;
    }
  }
  return report;
}

}  // namespace entropydb
