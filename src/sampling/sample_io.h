#ifndef ENTROPYDB_SAMPLING_SAMPLE_IO_H_
#define ENTROPYDB_SAMPLING_SAMPLE_IO_H_

#include <string>

#include "common/env.h"
#include "common/result.h"
#include "sampling/sample.h"

namespace entropydb {

/// Serializes a weighted sample (schema, domains, encoded rows, expansion
/// weights, name, fraction) to a line-oriented text file, the same style as
/// EntropySummary::Save; LoadSample restores it without the base table.
/// Attribute names and the sample name must be whitespace-free tokens (they
/// already are everywhere in this codebase); Save rejects offenders with
/// InvalidArgument rather than writing a file Load cannot reopen.
///
/// Format v2 appends the sample's row-group index (sample_index.h) after
/// the row block — per attribute, the prefix-sum group offsets and the row
/// permutation — so loads skip the rebuild. A sample without an index
/// writes an empty index section (index 0) and loads without one.
///
/// Format v3 (the checksummed era) is v2 plus a mandatory CRC32C footer
/// over the payload; writes go through `env` and are synced to stable
/// storage before SaveSample returns.
Status SaveSample(const WeightedSample& sample, const std::string& path,
                  Env* env = Env::Default());

/// Restores a sample written by SaveSample. The rebuilt table carries the
/// original domains, so query codes are position-compatible with summaries
/// of the same relation. A v3 file must carry a valid checksum footer
/// (kCorruption otherwise; `verify_checksums` = false skips the CRC math
/// but still requires the footer's presence). v2 files restore their
/// persisted index (validated against the rows; Corruption on mismatch);
/// v1 (PR 3-era, index-less) files load unchanged and REBUILD the index on
/// open — mirroring the store MANIFEST's compat rule — so old companions
/// speed up without a rewrite. v1/v2 files carry no footer and load with a
/// stderr warning.
Result<WeightedSample> LoadSample(const std::string& path,
                                  Env* env = Env::Default(),
                                  bool verify_checksums = true);

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_IO_H_
