#ifndef ENTROPYDB_SAMPLING_SAMPLE_IO_H_
#define ENTROPYDB_SAMPLING_SAMPLE_IO_H_

#include <string>

#include "common/result.h"
#include "sampling/sample.h"

namespace entropydb {

/// Serializes a weighted sample (schema, domains, encoded rows, expansion
/// weights, name, fraction) to a line-oriented text file, the same style as
/// EntropySummary::Save; LoadSample restores it without the base table.
/// Attribute names and the sample name must be whitespace-free tokens (they
/// already are everywhere in this codebase); Save rejects offenders with
/// InvalidArgument rather than writing a file Load cannot reopen.
///
/// Format v2 appends the sample's row-group index (sample_index.h) after
/// the row block — per attribute, the prefix-sum group offsets and the row
/// permutation — so loads skip the rebuild. A sample without an index
/// writes an empty index section (index 0) and loads without one.
Status SaveSample(const WeightedSample& sample, const std::string& path);

/// Restores a sample written by SaveSample. The rebuilt table carries the
/// original domains, so query codes are position-compatible with summaries
/// of the same relation. v2 files restore their persisted index (validated
/// against the rows; Corruption on mismatch); v1 (PR 3-era, index-less)
/// files load unchanged and REBUILD the index on open — mirroring the
/// store MANIFEST's v1/v2 compat rule — so old companions speed up without
/// a rewrite.
Result<WeightedSample> LoadSample(const std::string& path);

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_IO_H_
