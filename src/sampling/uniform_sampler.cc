#include "sampling/uniform_sampler.h"

#include "storage/table_builder.h"

namespace entropydb {

Result<WeightedSample> UniformSampler::Create(const Table& base,
                                              double fraction,
                                              uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sampling fraction must be in (0, 1]");
  }
  Rng rng(seed);
  TableBuilder builder(base.schema());
  for (AttrId a = 0; a < base.num_attributes(); ++a) {
    builder.SetDomain(a, base.domain(a));
  }
  const size_t m = base.num_attributes();
  std::vector<Code> row(m);
  size_t kept = 0;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    if (!rng.NextBernoulli(fraction)) continue;
    for (AttrId a = 0; a < m; ++a) row[a] = base.at(r, a);
    builder.AppendEncodedRow(row);
    ++kept;
  }
  ASSIGN_OR_RETURN(auto table, builder.Finish());
  WeightedSample sample;
  sample.rows = std::move(table);
  sample.weights.assign(kept, 1.0 / fraction);
  sample.fraction = fraction;
  sample.name = "Uni";
  return sample;
}

}  // namespace entropydb
