#ifndef ENTROPYDB_SAMPLING_SAMPLE_INDEX_H_
#define ENTROPYDB_SAMPLING_SAMPLE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "query/counting_query.h"
#include "storage/table.h"

namespace entropydb {

/// \brief Value-keyed row groups over a sample table — the zone-map-style
/// skipping index behind indexed Horvitz-Thompson evaluation.
///
/// For every attribute `a` the index holds a dictionary-ordered row
/// permutation `perm(a)` plus prefix-sum group offsets `offsets(a)`: the
/// rows whose code on `a` equals `c` occupy
/// `perm(a)[offsets(a)[c] .. offsets(a)[c+1]-1]`, in ASCENDING original-row
/// order. A selective predicate therefore resolves to a handful of row
/// groups (O(1) lookups through the offsets), and the estimator touches
/// only those candidate rows instead of scanning the whole sample.
///
/// The ascending-within-group invariant is what keeps indexed evaluation
/// semantics-preserving: SampleEstimator re-sorts candidates from multiple
/// groups into ascending original-row order before accumulating, so sums,
/// variances, and every routing decision downstream are bitwise identical
/// to the full-scan path (floating-point addition is order-sensitive; the
/// ORDER, not just the set, must match). See docs/PERFORMANCE.md.
///
/// Immutable after construction and safe to share across query threads.
class SampleIndex {
 public:
  /// Per-attribute layout: `offsets` has domain_size + 1 entries (prefix
  /// sums of per-code group sizes, so offsets.back() == num rows); `perm`
  /// is the grouped row permutation.
  struct AttrIndex {
    std::vector<uint32_t> offsets;
    std::vector<uint32_t> perm;
  };

  /// Builds the index over every attribute of `rows` (counting sort per
  /// attribute: O(num_rows + domain_size), rows ascending within each
  /// group by construction).
  static std::shared_ptr<const SampleIndex> Build(const Table& rows);

  /// Assembles an index from persisted parts (sample_io's .eds v2 load),
  /// validating the invariants Build guarantees — offsets are monotone
  /// prefix sums ending at `num_rows`, each group's rows are ascending,
  /// and every grouped row really carries the group's code in `rows` — so
  /// a corrupt index file surfaces as Corruption instead of silently
  /// perturbing estimates.
  static Result<std::shared_ptr<const SampleIndex>> FromParts(
      const Table& rows, std::vector<AttrIndex> attrs);

  size_t num_attributes() const { return attrs_.size(); }
  size_t num_rows() const { return num_rows_; }
  const AttrIndex& attr(AttrId a) const { return attrs_[a]; }

  /// Number of rows in the groups matching `pred` on attribute `a` — the
  /// candidate-set size indexed evaluation would touch. O(1) for point and
  /// range predicates, O(|set|) for sets.
  size_t CandidateCount(AttrId a, const AttrPredicate& pred) const;

  /// The constrained attribute whose matching row groups are smallest
  /// (ties toward the lowest attribute id, keeping the chosen plan
  /// deterministic). Returns false when `q` constrains nothing.
  bool BestAttribute(const CountingQuery& q, AttrId* best,
                     size_t* candidates) const;

  /// Appends the rows of the groups matching `pred` on `a` to `out`
  /// (each group ascending). Returns the number of non-empty groups
  /// appended: with more than one, the caller must re-sort `out` to
  /// restore global ascending row order.
  size_t CollectRows(AttrId a, const AttrPredicate& pred,
                     std::vector<uint32_t>* out) const;

  size_t MemoryBytes() const;

 private:
  SampleIndex(std::vector<AttrIndex> attrs, size_t num_rows)
      : attrs_(std::move(attrs)), num_rows_(num_rows) {}

  std::vector<AttrIndex> attrs_;
  size_t num_rows_ = 0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_INDEX_H_
