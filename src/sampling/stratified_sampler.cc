#include "sampling/stratified_sampler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "storage/table_builder.h"

namespace entropydb {

Result<WeightedSample> StratifiedSampler::Create(const Table& base, AttrId a,
                                                 AttrId b, double fraction,
                                                 uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("sampling fraction must be in (0, 1]");
  }
  if (a >= base.num_attributes() || b >= base.num_attributes() || a == b) {
    return Status::InvalidArgument("bad stratification attributes");
  }

  // Bucket row ids by stratum key (combined 2-D code).
  const uint64_t nb = base.domain(b).size();
  std::unordered_map<uint64_t, std::vector<uint32_t>> strata;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    uint64_t key = static_cast<uint64_t>(base.at(r, a)) * nb + base.at(r, b);
    strata[key].push_back(static_cast<uint32_t>(r));
  }

  Rng rng(seed);
  TableBuilder builder(base.schema());
  for (AttrId i = 0; i < base.num_attributes(); ++i) {
    builder.SetDomain(i, base.domain(i));
  }
  std::vector<double> weights;
  const size_t m = base.num_attributes();
  std::vector<Code> row(m);

  // Deterministic iteration order: sort stratum keys.
  std::vector<uint64_t> keys;
  keys.reserve(strata.size());
  for (const auto& [k, _] : strata) keys.push_back(k);
  std::sort(keys.begin(), keys.end());

  for (uint64_t key : keys) {
    auto& rows = strata[key];
    const size_t nh = rows.size();
    size_t take = std::max<size_t>(
        1, static_cast<size_t>(std::llround(fraction * nh)));
    take = std::min(take, nh);
    // Partial Fisher-Yates: uniform without replacement.
    for (size_t i = 0; i < take; ++i) {
      size_t j = i + rng.Uniform(nh - i);
      std::swap(rows[i], rows[j]);
    }
    const double w = static_cast<double>(nh) / static_cast<double>(take);
    for (size_t i = 0; i < take; ++i) {
      for (AttrId att = 0; att < m; ++att) row[att] = base.at(rows[i], att);
      builder.AppendEncodedRow(row);
      weights.push_back(w);
    }
  }

  ASSIGN_OR_RETURN(auto table, builder.Finish());
  WeightedSample sample;
  sample.rows = std::move(table);
  sample.weights = std::move(weights);
  sample.fraction = fraction;
  sample.name = "Strat";
  return sample;
}

}  // namespace entropydb
