#ifndef ENTROPYDB_SAMPLING_STRATIFIED_SAMPLER_H_
#define ENTROPYDB_SAMPLING_STRATIFIED_SAMPLER_H_

#include "common/result.h"
#include "common/rng.h"
#include "sampling/sample.h"

namespace entropydb {

/// \brief Stratified sampling on an attribute pair — the paper's stratified
/// baselines (Sec 6.2: "stratified samples along the same attribute-pairs
/// as the 2D statistics").
///
/// Strata are the distinct (A_a, A_b) code combinations present in the base
/// table. Each stratum of size N_h receives n_h = max(1, round(fraction *
/// N_h)) sample rows drawn uniformly without replacement, so rare strata
/// are guaranteed representation (the classic advantage over uniform
/// sampling); each sampled row carries weight N_h / n_h.
class StratifiedSampler {
 public:
  static Result<WeightedSample> Create(const Table& base, AttrId a, AttrId b,
                                       double fraction, uint64_t seed);
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_STRATIFIED_SAMPLER_H_
