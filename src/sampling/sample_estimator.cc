#include "sampling/sample_estimator.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

SampleEstimator::SampleEstimator(const WeightedSample& sample)
    : sample_(sample) {
  double w_max = 0.0;
  for (double w : sample_.weights) w_max = std::max(w_max, w);
  if (sample_.weights.empty() && sample_.fraction > 0.0) {
    w_max = 1.0 / sample_.fraction;  // nominal weight of the missed row
  }
  miss_floor_ = std::max(0.0, w_max * (w_max - 1.0));
}

QueryEstimate SampleEstimator::Count(const CountingQuery& q) const {
  const Table& t = *sample_.rows;
  const ActivePredicates active(q);
  QueryEstimate est;
  bool matched = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (!active.Matches(t, r)) continue;
    const double w = sample_.weights[r];
    est.expectation += w;
    est.variance += w * (w - 1.0);
    matched = true;
  }
  if (!matched) est.variance = miss_floor_;
  return est;
}

QueryEstimate SampleEstimator::Sum(AttrId a,
                                   const std::vector<double>& values,
                                   const CountingQuery& q) const {
  const Table& t = *sample_.rows;
  const ActivePredicates active(q);
  QueryEstimate est;
  bool matched = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (!active.Matches(t, r)) continue;
    const double w = sample_.weights[r];
    const double v = values[t.at(r, a)];
    est.expectation += w * v;
    est.variance += w * (w - 1.0) * v * v;
    matched = true;
  }
  if (!matched) {
    double v2_max = 0.0;
    for (double v : values) v2_max = std::max(v2_max, v * v);
    est.variance = miss_floor_ * v2_max;
  }
  return est;
}

}  // namespace entropydb
