#include "sampling/sample_estimator.h"

namespace entropydb {

QueryEstimate SampleEstimator::Count(const CountingQuery& q) const {
  const Table& t = *sample_.rows;
  std::vector<std::pair<AttrId, const AttrPredicate*>> active;
  for (AttrId a = 0; a < q.num_attributes(); ++a) {
    if (!q.predicate(a).is_any()) active.emplace_back(a, &q.predicate(a));
  }
  QueryEstimate est;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool match = true;
    for (const auto& [a, p] : active) {
      if (!p->Matches(t.at(r, a))) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    const double w = sample_.weights[r];
    est.expectation += w;
    est.variance += w * (w - 1.0);
  }
  return est;
}

}  // namespace entropydb
