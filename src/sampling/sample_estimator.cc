#include "sampling/sample_estimator.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

namespace {

/// Candidate-row scratch for indexed evaluation. Estimators are shared
/// const across the lock-free query path, so the buffer is per thread;
/// it amortizes to zero allocations per query.
std::vector<uint32_t>& RowScratch() {
  thread_local std::vector<uint32_t> buf;
  return buf;
}

}  // namespace

SampleEstimator::SampleEstimator(const WeightedSample& sample)
    : sample_(sample) {
  double w_max = 0.0;
  for (double w : sample_.weights) w_max = std::max(w_max, w);
  if (sample_.weights.empty() && sample_.fraction > 0.0) {
    w_max = 1.0 / sample_.fraction;  // nominal weight of the missed row
  }
  miss_floor_ = std::max(0.0, w_max * (w_max - 1.0));
}

const std::vector<uint32_t>* SampleEstimator::IndexedCandidates(
    const CountingQuery& q, AttrId* chosen) const {
  if (sample_.index == nullptr ||
      sample_.index->num_rows() != sample_.rows->num_rows()) {
    return nullptr;
  }
  const SampleIndex& index = *sample_.index;
  size_t candidates = 0;
  if (!index.BestAttribute(q, chosen, &candidates)) return nullptr;
  // Near-full candidate sets make the gather (plus possible re-sort) cost
  // more than the plain scan it replaces; both paths are bitwise
  // identical, so the cutover is purely a latency choice.
  if (2 * candidates >= index.num_rows()) return nullptr;
  std::vector<uint32_t>& rows = RowScratch();
  rows.clear();
  const size_t groups = index.CollectRows(*chosen, q.predicate(*chosen), &rows);
  // Groups are each ascending; merging several requires a re-sort to
  // restore the global ascending original-row order the scan path
  // accumulates in — THE invariant keeping indexed sums bitwise equal.
  if (groups > 1) std::sort(rows.begin(), rows.end());
  return &rows;
}

QueryEstimate SampleEstimator::Count(const CountingQuery& q) const {
  QueryEstimate est;
  bool matched = false;
  ForEachMatchingRow(q, [&](size_t r) {
    const double w = sample_.weights[r];
    est.expectation += w;
    est.variance += w * (w - 1.0);
    matched = true;
  });
  if (!matched) est.variance = miss_floor_;
  return est;
}

QueryEstimate SampleEstimator::Sum(AttrId a,
                                   const std::vector<double>& values,
                                   const CountingQuery& q) const {
  const Table& t = *sample_.rows;
  QueryEstimate est;
  bool matched = false;
  ForEachMatchingRow(q, [&](size_t r) {
    const double w = sample_.weights[r];
    const double v = values[t.at(r, a)];
    est.expectation += w * v;
    est.variance += w * (w - 1.0) * v * v;
    matched = true;
  });
  if (!matched) {
    double v2_max = 0.0;
    for (double v : values) v2_max = std::max(v2_max, v * v);
    est.variance = miss_floor_ * v2_max;
  }
  return est;
}

QueryResult SampleEstimator::Moments(AttrId a,
                                     const std::vector<double>& values,
                                     const CountingQuery& q) const {
  const Table& t = *sample_.rows;
  QueryResult out;
  bool matched = false;
  ForEachMatchingRow(q, [&](size_t r) {
    const double w = sample_.weights[r];
    const double v = values[t.at(r, a)];
    out.count.expectation += w;
    out.count.variance += w * (w - 1.0);
    out.sum.expectation += w * v;
    out.sum.variance += w * (w - 1.0) * v * v;
    out.sum_count_cov += w * (w - 1.0) * v;
    matched = true;
  });
  if (!matched) {
    double v2_max = 0.0;
    for (double v : values) v2_max = std::max(v2_max, v * v);
    out.count.variance = miss_floor_;
    out.sum.variance = miss_floor_ * v2_max;
  }
  out.has_moments = true;
  return out;
}

}  // namespace entropydb
