#ifndef ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_
#define ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_

#include "maxent/answerer.h"
#include "query/counting_query.h"
#include "sampling/sample.h"

namespace entropydb {

/// \brief Horvitz-Thompson count estimation over a weighted sample.
///
/// expectation = sum of weights of matching sample rows. The variance field
/// uses the Bernoulli/Poisson-sampling approximation
/// sum_i w_i (w_i - 1) over matching rows, which is exact for Bernoulli
/// samples and a slight over-estimate for without-replacement strata.
class SampleEstimator {
 public:
  explicit SampleEstimator(const WeightedSample& sample) : sample_(sample) {}

  /// Estimated COUNT(*) for a conjunctive query.
  QueryEstimate Count(const CountingQuery& q) const;

 private:
  const WeightedSample& sample_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_
