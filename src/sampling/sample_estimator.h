#ifndef ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_
#define ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_

#include <vector>

#include "maxent/answerer.h"
#include "query/counting_query.h"
#include "sampling/sample.h"

namespace entropydb {

/// \brief Horvitz-Thompson estimation over a weighted sample.
///
/// expectation = sum of weights of matching sample rows. The variance field
/// uses the Bernoulli/Poisson-sampling approximation
/// sum_i w_i (w_i - 1) over matching rows, which is exact for Bernoulli
/// samples and a slight over-estimate for without-replacement strata.
///
/// When the sample carries a row-group index (WeightedSample::index),
/// selective queries are answered from the smallest matching row groups
/// instead of a full scan. Candidate rows are accumulated in ascending
/// original-row order — exactly the scan's order — so indexed estimates,
/// variances, and every routing decision built on them are bitwise
/// identical to the unindexed path (docs/PERFORMANCE.md has the cost
/// model and measured speedups).
///
/// When NO sampled row matches, the matching-row sum degenerates to
/// variance 0 — which would read as "perfectly confident the count is 0"
/// exactly where a sample is weakest (a rare slice the sample may simply
/// have missed). Count/Sum instead report the finite floor
/// w_max (w_max - 1): the estimator variance had one maximally-weighted row
/// been missed. The hybrid router (engine/query_router.h) therefore routes
/// such queries back to a summary rather than trusting a silent zero; see
/// docs/ESTIMATORS.md.
class SampleEstimator {
 public:
  explicit SampleEstimator(const WeightedSample& sample);

  /// Estimated COUNT(*) for a conjunctive query. Variance is
  /// sum w_i (w_i - 1) over matching rows, floored at MissFloor() when no
  /// row matches.
  QueryEstimate Count(const CountingQuery& q) const;

  /// Estimated SUM of a per-value weight over attribute `a` under filter
  /// `q` (one entry of `values` per bucket of `a`, e.g. bucket midpoints).
  /// expectation = sum w_i values[code_i(a)] over matching rows; variance =
  /// sum w_i (w_i - 1) values^2, floored at MissFloor() * max(values^2)
  /// when no row matches.
  QueryEstimate Sum(AttrId a, const std::vector<double>& values,
                    const CountingQuery& q) const;

  /// SUM and COUNT moment legs plus their covariance in ONE matching-row
  /// pass: per row, the count leg gains (w, w (w - 1)), the sum leg
  /// (w v, w (w - 1) v^2), and the covariance w (w - 1) v — the
  /// Horvitz-Thompson cross term Cov(S, C) under Bernoulli sampling
  /// (docs/ESTIMATORS.md "Cross-shard merging"). Each accumulator runs
  /// the identical statements in the identical row order as Count/Sum,
  /// so the legs are bitwise the separate calls' answers. When no row
  /// matches, the legs take their miss floors and the covariance stays 0
  /// (a silent miss carries no cross information).
  QueryResult Moments(AttrId a, const std::vector<double>& values,
                      const CountingQuery& q) const;

  /// The zero-match variance floor w_max (w_max - 1), where w_max is the
  /// largest expansion weight in the sample (for an EMPTY sample, the
  /// nominal weight 1/fraction). 0 for a full (weight-1) sample, where a
  /// zero count really is exact; always finite.
  double MissFloor() const { return miss_floor_; }

 private:
  /// Indexed-plan front half shared by Count and Sum: picks the
  /// constrained attribute with the smallest matching row groups and
  /// gathers its candidate rows in ascending original-row order (into
  /// thread-local scratch). Returns nullptr when the sample has no index,
  /// the query constrains nothing, or the candidate set is so large that
  /// scanning is cheaper — the caller then takes the scan path, which is
  /// bitwise equivalent either way.
  const std::vector<uint32_t>* IndexedCandidates(const CountingQuery& q,
                                                 AttrId* chosen) const;

  /// Runs `fn(row)` for every sample row matching `q`, in ascending
  /// original-row order, via the indexed plan when profitable and the
  /// full scan otherwise. Count and Sum both accumulate through this one
  /// iterator, so the two paths cannot desynchronize: per matching row
  /// they execute the identical statements in the identical order — the
  /// bitwise-identity contract routing depends on.
  template <typename PerRow>
  void ForEachMatchingRow(const CountingQuery& q, const PerRow& fn) const {
    const Table& t = *sample_.rows;
    AttrId chosen = 0;
    if (const std::vector<uint32_t>* rows = IndexedCandidates(q, &chosen)) {
      const ActivePredicates residual(q, chosen);
      for (uint32_t r : *rows) {
        if (residual.Matches(t, r)) fn(r);
      }
    } else {
      const ActivePredicates active(q);
      for (size_t r = 0; r < t.num_rows(); ++r) {
        if (active.Matches(t, r)) fn(r);
      }
    }
  }

  const WeightedSample& sample_;
  double miss_floor_ = 0.0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_ESTIMATOR_H_
