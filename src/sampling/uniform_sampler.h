#ifndef ENTROPYDB_SAMPLING_UNIFORM_SAMPLER_H_
#define ENTROPYDB_SAMPLING_UNIFORM_SAMPLER_H_

#include "common/result.h"
#include "common/rng.h"
#include "sampling/sample.h"

namespace entropydb {

/// \brief Uniform Bernoulli row sampling — the paper's "1% uniform sample"
/// baseline (Sec 6.2).
///
/// Every base row enters the sample independently with probability
/// `fraction`; every sampled row carries weight 1/fraction.
class UniformSampler {
 public:
  static Result<WeightedSample> Create(const Table& base, double fraction,
                                       uint64_t seed);
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_UNIFORM_SAMPLER_H_
