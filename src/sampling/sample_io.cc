#include "sampling/sample_io.h"

#include <cstdio>
#include <sstream>

#include "storage/table_builder.h"

namespace entropydb {

namespace {
void WriteDouble(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

bool HasWhitespace(const std::string& s) {
  return s.find_first_of(" \t\n\r") != std::string::npos;
}
}  // namespace

Status SaveSample(const WeightedSample& sample, const std::string& path,
                  Env* env) {
  if (sample.rows == nullptr) {
    return Status::InvalidArgument("sample has no row table");
  }
  const Table& t = *sample.rows;
  const SampleIndex* index = sample.index.get();
  if (index != nullptr && (index->num_attributes() != t.num_attributes() ||
                           index->num_rows() != t.num_rows())) {
    return Status::InvalidArgument(
        "sample index disagrees with the sample rows");
  }
  // The format is token-oriented (LoadSample reads names with >>): reject
  // whitespace up front instead of writing a file Load can never reopen.
  if (HasWhitespace(sample.name)) {
    return Status::InvalidArgument("sample name contains whitespace: '" +
                                   sample.name + "'");
  }
  for (AttrId a = 0; a < t.num_attributes(); ++a) {
    if (HasWhitespace(t.schema().attribute(a).name)) {
      return Status::InvalidArgument("attribute name contains whitespace: '" +
                                     t.schema().attribute(a).name + "'");
    }
  }
  std::ostringstream out;
  out << "ENTROPYDB_SAMPLE_V3\n";
  out << "name " << (sample.name.empty() ? "sample" : sample.name) << '\n';
  out << "fraction ";
  WriteDouble(out, sample.fraction);
  out << '\n';
  out << "attrs " << t.num_attributes() << '\n';
  for (AttrId a = 0; a < t.num_attributes(); ++a) {
    const Domain& d = t.domain(a);
    out << t.schema().attribute(a).name;
    if (d.is_categorical()) {
      out << " cat " << d.size() << '\n';
      for (Code v = 0; v < d.size(); ++v) out << d.LabelFor(v) << '\n';
    } else {
      out << " bin ";
      WriteDouble(out, d.bin_lo());
      out << ' ';
      WriteDouble(out, d.bin_hi());
      out << ' ' << d.size() << '\n';
    }
  }
  out << "rows " << t.num_rows() << '\n';
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (AttrId a = 0; a < t.num_attributes(); ++a) {
      out << t.at(r, a) << ' ';
    }
    WriteDouble(out, sample.weights[r]);
    out << '\n';
  }
  // v2 index block: per attribute, the prefix-sum group offsets and the
  // grouped row permutation. "index 0" marks an index-less sample (built
  // with indexing off); Load then leaves the index absent rather than
  // second-guessing the builder.
  out << "index " << (index != nullptr ? t.num_attributes() : 0) << '\n';
  if (index != nullptr) {
    for (AttrId a = 0; a < t.num_attributes(); ++a) {
      const SampleIndex::AttrIndex& ai = index->attr(a);
      out << "iattr " << a << "\noffsets";
      for (uint32_t o : ai.offsets) out << ' ' << o;
      out << "\nperm";
      for (uint32_t p : ai.perm) out << ' ' << p;
      out << '\n';
    }
  }
  if (!out.good()) {
    return Status::Internal("sample serialization failure: " + path);
  }
  return WriteChecksummedFile(env, path, out.str());
}

Result<WeightedSample> LoadSample(const std::string& path, Env* env,
                                  bool verify_checksums) {
  bool had_footer = false;
  ASSIGN_OR_RETURN(
      std::string payload,
      ReadChecksummedFile(env, path, verify_checksums, &had_footer));
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token) ||
      (token != "ENTROPYDB_SAMPLE_V1" && token != "ENTROPYDB_SAMPLE_V2" &&
       token != "ENTROPYDB_SAMPLE_V3")) {
    return Status::Corruption("bad sample header in " + path);
  }
  if (token == "ENTROPYDB_SAMPLE_V3" && !had_footer) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  if (!had_footer) {
    std::fprintf(stderr,
                 "entropydb: warning: %s has no checksum footer "
                 "(legacy format, loaded unverified)\n",
                 path.c_str());
  }
  const bool v2 = token != "ENTROPYDB_SAMPLE_V1";
  WeightedSample sample;
  if (!(in >> token >> sample.name) || token != "name") {
    return Status::Corruption("bad sample name record in " + path);
  }
  if (!(in >> token >> sample.fraction) || token != "fraction") {
    return Status::Corruption("bad sample fraction record in " + path);
  }
  size_t m = 0;
  if (!(in >> token >> m) || token != "attrs" || m == 0) {
    return Status::Corruption("bad sample attrs record in " + path);
  }
  std::vector<AttributeSpec> specs(m);
  std::vector<Domain> domains(m);
  for (size_t a = 0; a < m; ++a) {
    std::string kind;
    if (!(in >> specs[a].name >> kind)) {
      return Status::Corruption("truncated sample attribute in " + path);
    }
    if (kind == "cat") {
      size_t count = 0;
      if (!(in >> count)) return Status::Corruption("bad sample domain");
      std::string line;
      std::getline(in, line);  // consume the rest of the header line
      std::vector<std::string> labels(count);
      for (auto& l : labels) {
        if (!std::getline(in, l)) {
          return Status::Corruption("truncated sample labels in " + path);
        }
      }
      specs[a].type = AttributeType::kCategorical;
      domains[a] = Domain::Categorical(std::move(labels));
    } else if (kind == "bin") {
      double lo = 0, hi = 0;
      uint32_t buckets = 0;
      if (!(in >> lo >> hi >> buckets)) {
        return Status::Corruption("bad binned sample domain in " + path);
      }
      specs[a].type = AttributeType::kNumeric;
      specs[a].buckets = buckets;
      domains[a] = Domain::Binned(lo, hi, buckets);
    } else {
      return Status::Corruption("unknown sample domain kind: " + kind);
    }
  }
  size_t rows = 0;
  if (!(in >> token >> rows) || token != "rows") {
    return Status::Corruption("bad sample rows record in " + path);
  }
  TableBuilder builder(Schema{std::move(specs)});
  for (AttrId a = 0; a < m; ++a) builder.SetDomain(a, domains[a]);
  std::vector<Code> row(m);
  sample.weights.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < m; ++a) {
      if (!(in >> row[a])) {
        return Status::Corruption("truncated sample row in " + path);
      }
    }
    if (!(in >> sample.weights[r])) {
      return Status::Corruption("truncated sample weight in " + path);
    }
    builder.AppendEncodedRow(row);
  }
  ASSIGN_OR_RETURN(sample.rows, builder.Finish());

  if (!v2) {
    // v1 (PR 3-era) files predate the row-group index: rebuild it on open
    // so old companions serve indexed without a file rewrite (the same
    // forward-compat rule the store MANIFEST uses).
    sample.index = SampleIndex::Build(*sample.rows);
    return sample;
  }
  size_t indexed = 0;
  if (!(in >> token >> indexed) || token != "index") {
    return Status::Corruption("bad sample index record in " + path);
  }
  if (indexed == 0) return sample;  // saved with indexing off
  if (indexed != m) {
    return Status::Corruption("partial sample index in " + path);
  }
  std::vector<SampleIndex::AttrIndex> attrs(m);
  for (size_t i = 0; i < m; ++i) {
    size_t a = 0;
    if (!(in >> token >> a) || token != "iattr" || a >= m) {
      return Status::Corruption("bad sample index attribute in " + path);
    }
    SampleIndex::AttrIndex& ai = attrs[a];
    if (!ai.offsets.empty()) {
      return Status::Corruption("duplicate sample index attribute in " + path);
    }
    ai.offsets.resize(domains[a].size() + 1);
    if (!(in >> token) || token != "offsets") {
      return Status::Corruption("bad sample index offsets in " + path);
    }
    for (uint32_t& o : ai.offsets) {
      if (!(in >> o)) {
        return Status::Corruption("truncated sample index offsets in " + path);
      }
    }
    ai.perm.resize(rows);
    if (!(in >> token) || token != "perm") {
      return Status::Corruption("bad sample index perm in " + path);
    }
    for (uint32_t& p : ai.perm) {
      if (!(in >> p)) {
        return Status::Corruption("truncated sample index perm in " + path);
      }
    }
  }
  // FromParts re-checks every invariant against the loaded rows, so a
  // corrupt index fails the load loudly instead of skewing estimates.
  auto index = SampleIndex::FromParts(*sample.rows, std::move(attrs));
  if (!index.ok()) {
    return Status::Corruption(index.status().message() + " in " + path);
  }
  sample.index = *index;
  return sample;
}

}  // namespace entropydb
