#ifndef ENTROPYDB_SAMPLING_SAMPLE_H_
#define ENTROPYDB_SAMPLING_SAMPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace entropydb {

/// \brief A weighted row sample of a base table.
///
/// `rows` shares the base table's schema and domains; `weights[i]` is the
/// Horvitz-Thompson expansion weight of sample row i (1/pi_i for inclusion
/// probability pi_i), so SUM(weights of matching rows) is unbiased for any
/// counting query.
struct WeightedSample {
  std::shared_ptr<Table> rows;
  std::vector<double> weights;
  /// Nominal sampling fraction used to build the sample.
  double fraction = 0.0;
  /// Display name, e.g. "Uni" or "Strat(origin,dest)".
  std::string name;

  size_t size() const { return rows ? rows->num_rows() : 0; }
  size_t MemoryBytes() const {
    return (rows ? rows->MemoryBytes() : 0) +
           weights.capacity() * sizeof(double);
  }
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_H_
