#ifndef ENTROPYDB_SAMPLING_SAMPLE_H_
#define ENTROPYDB_SAMPLING_SAMPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "sampling/sample_index.h"
#include "storage/table.h"

namespace entropydb {

/// \brief A weighted row sample of a base table.
///
/// `rows` shares the base table's schema and domains; `weights[i]` is the
/// Horvitz-Thompson expansion weight of sample row i (1/pi_i for inclusion
/// probability pi_i), so SUM(weights of matching rows) is unbiased for any
/// counting query.
struct WeightedSample {
  std::shared_ptr<Table> rows;
  std::vector<double> weights;
  /// Nominal sampling fraction used to build the sample.
  double fraction = 0.0;
  /// Display name, e.g. "Uni" or "Strat(origin,dest)".
  std::string name;
  /// Optional row-group index (sampling/sample_index.h). When present,
  /// SampleEstimator evaluates selective queries over the matching row
  /// groups instead of scanning every row — bitwise-identically, so
  /// carrying (or dropping) the index never changes an estimate, only its
  /// latency. Built by SourceStore (StoreOptions::sample_index), persisted
  /// in .eds v2 files, rebuilt on load for v1 files.
  std::shared_ptr<const SampleIndex> index;

  size_t size() const { return rows ? rows->num_rows() : 0; }
  size_t MemoryBytes() const {
    return (rows ? rows->MemoryBytes() : 0) +
           weights.capacity() * sizeof(double) +
           (index ? index->MemoryBytes() : 0);
  }
};

}  // namespace entropydb

#endif  // ENTROPYDB_SAMPLING_SAMPLE_H_
