#include "sampling/sample_index.h"

#include <algorithm>

#include "common/prefix_sum.h"

namespace entropydb {

namespace {

/// Inclusive code interval [lo, hi] covered by `pred` against a domain of
/// `dom` codes; empty (second < first) for predicates matching nothing.
/// Set predicates are handled separately (they are not an interval).
std::pair<Code, Code> PredInterval(const AttrPredicate& pred, size_t dom) {
  if (dom == 0) return {1, 0};
  switch (pred.kind()) {
    case AttrPredicate::Kind::kAny:
      return {0, static_cast<Code>(dom - 1)};
    case AttrPredicate::Kind::kPoint:
      if (pred.lo() >= dom) return {1, 0};
      return {pred.lo(), pred.lo()};
    case AttrPredicate::Kind::kRange: {
      const Code hi = std::min<Code>(pred.hi(), static_cast<Code>(dom - 1));
      if (pred.lo() > hi) return {1, 0};
      return {pred.lo(), hi};
    }
    case AttrPredicate::Kind::kSet:
      break;
  }
  return {1, 0};
}

}  // namespace

std::shared_ptr<const SampleIndex> SampleIndex::Build(const Table& rows) {
  const size_t n = rows.num_rows();
  std::vector<AttrIndex> attrs(rows.num_attributes());
  for (AttrId a = 0; a < rows.num_attributes(); ++a) {
    const size_t dom = rows.domain(a).size();
    // Per-code group sizes, then prefix-sum offsets (group c occupies
    // [offsets[c], offsets[c+1]) of the permutation).
    std::vector<double> counts(dom, 0.0);
    for (size_t r = 0; r < n; ++r) counts[rows.at(r, a)] += 1.0;
    const PrefixSum sums(counts);
    AttrIndex& idx = attrs[a];
    idx.offsets.resize(dom + 1);
    idx.offsets[0] = 0;
    for (size_t c = 0; c < dom; ++c) {
      idx.offsets[c + 1] = static_cast<uint32_t>(sums.RangeSum(0, c));
    }
    // Stable counting-sort fill: visiting rows in ascending order keeps
    // each group's rows ascending — the invariant indexed evaluation
    // needs for bitwise-identical accumulation.
    idx.perm.resize(n);
    std::vector<uint32_t> cursor(idx.offsets.begin(), idx.offsets.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      idx.perm[cursor[rows.at(r, a)]++] = static_cast<uint32_t>(r);
    }
  }
  return std::shared_ptr<const SampleIndex>(
      new SampleIndex(std::move(attrs), n));
}

Result<std::shared_ptr<const SampleIndex>> SampleIndex::FromParts(
    const Table& rows, std::vector<AttrIndex> attrs) {
  const size_t n = rows.num_rows();
  if (attrs.size() != rows.num_attributes()) {
    return Status::Corruption("sample index arity mismatch");
  }
  for (AttrId a = 0; a < attrs.size(); ++a) {
    const AttrIndex& idx = attrs[a];
    const size_t dom = rows.domain(a).size();
    if (idx.offsets.size() != dom + 1 || idx.offsets.front() != 0 ||
        idx.offsets.back() != n || idx.perm.size() != n) {
      return Status::Corruption("sample index shape mismatch on attribute " +
                                std::to_string(a));
    }
    for (size_t c = 0; c < dom; ++c) {
      if (idx.offsets[c] > idx.offsets[c + 1]) {
        return Status::Corruption(
            "sample index offsets not monotone on attribute " +
            std::to_string(a));
      }
      for (uint32_t i = idx.offsets[c]; i < idx.offsets[c + 1]; ++i) {
        const uint32_t r = idx.perm[i];
        if (r >= n || rows.at(r, a) != c ||
            (i > idx.offsets[c] && idx.perm[i - 1] >= r)) {
          return Status::Corruption(
              "sample index group inconsistent on attribute " +
              std::to_string(a));
        }
      }
    }
  }
  return std::shared_ptr<const SampleIndex>(
      new SampleIndex(std::move(attrs), n));
}

size_t SampleIndex::CandidateCount(AttrId a,
                                   const AttrPredicate& pred) const {
  const AttrIndex& idx = attrs_[a];
  const size_t dom = idx.offsets.size() - 1;
  if (pred.kind() == AttrPredicate::Kind::kSet) {
    size_t total = 0;
    for (Code c : pred.set()) {
      if (c < dom) total += idx.offsets[c + 1] - idx.offsets[c];
    }
    return total;
  }
  const auto [lo, hi] = PredInterval(pred, dom);
  if (hi < lo) return 0;
  return idx.offsets[hi + 1] - idx.offsets[lo];
}

bool SampleIndex::BestAttribute(const CountingQuery& q, AttrId* best,
                                size_t* candidates) const {
  bool have = false;
  for (AttrId a = 0; a < q.num_attributes() && a < attrs_.size(); ++a) {
    const AttrPredicate& pred = q.predicate(a);
    if (pred.is_any()) continue;
    const size_t count = CandidateCount(a, pred);
    if (!have || count < *candidates) {
      *best = a;
      *candidates = count;
      have = true;
    }
  }
  return have;
}

size_t SampleIndex::CollectRows(AttrId a, const AttrPredicate& pred,
                                std::vector<uint32_t>* out) const {
  const AttrIndex& idx = attrs_[a];
  const size_t dom = idx.offsets.size() - 1;
  size_t groups = 0;
  auto append = [&](Code c) {
    const uint32_t b = idx.offsets[c], e = idx.offsets[c + 1];
    if (b == e) return;
    out->insert(out->end(), idx.perm.begin() + b, idx.perm.begin() + e);
    ++groups;
  };
  if (pred.kind() == AttrPredicate::Kind::kSet) {
    for (Code c : pred.set()) {
      if (c < dom) append(c);
    }
    return groups;
  }
  const auto [lo, hi] = PredInterval(pred, dom);
  if (lo <= hi) {
    for (Code c = lo; c <= hi; ++c) append(c);
  }
  return groups;
}

size_t SampleIndex::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const AttrIndex& idx : attrs_) {
    total += idx.offsets.capacity() * sizeof(uint32_t) +
             idx.perm.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace entropydb
