#ifndef ENTROPYDB_COMMON_THREAD_POOL_H_
#define ENTROPYDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace entropydb {

/// \brief A small fixed-size worker pool for data-parallel loops.
///
/// The evaluation engine uses it to spread independent per-component work
/// (polynomial evaluation, the derivative sweep) across cores. Submitted
/// tasks must not block on each other; ParallelFor below is the intended
/// entry point.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// Process-wide pool sized to the hardware, created on first use. Returns
  /// nullptr on single-core machines, which callers treat as "run inline".
  static ThreadPool* Shared() {
    static ThreadPool* pool = [] {
      unsigned hw = std::thread::hardware_concurrency();
      return hw >= 2 ? new ThreadPool(hw) : nullptr;
    }();
    return pool;
  }

  /// True on threads owned by a pool (set by WorkerLoop). ParallelFor uses
  /// it to run nested fan-outs inline: a worker that re-submitted to the
  /// pool and then blocked waiting for its sub-iterations could deadlock
  /// once every worker does the same (all waiting, none draining).
  static bool& OnWorkerThread() {
    thread_local bool on_worker = false;
    return on_worker;
  }

 private:
  void WorkerLoop() {
    OnWorkerThread() = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// \brief Runs fn(i) for every i in [0, n), on the shared pool when one
/// exists and `n` is worth fanning out, inline otherwise.
///
/// Iterations must be independent and write disjoint outputs; results are
/// then identical to the serial loop regardless of thread count (the
/// evaluation engine relies on this for reproducibility). The call blocks
/// until every iteration has finished. Nested calls (an iteration that
/// itself calls ParallelFor, e.g. a parallel summary build whose solver
/// fans out per component) degrade to the inline loop on worker threads —
/// the outer fan-out already owns the cores.
template <typename Fn>
void ParallelFor(size_t n, size_t min_parallel, const Fn& fn) {
  ThreadPool* pool = ThreadPool::Shared();
  if (pool == nullptr || n < 2 || n < min_parallel ||
      ThreadPool::OnWorkerThread()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex mu;
  std::condition_variable done_cv;
  size_t next = 0;
  size_t active = 0;
  std::exception_ptr first_error;
  const size_t fan = std::min(n, pool->num_threads());
  // A throw from fn is captured (first one wins), remaining iterations are
  // abandoned, and the exception rethrows on the calling thread — never
  // before every worker has left the shared stack frame, and never out of
  // a pool thread (which would std::terminate).
  auto drain = [&]() noexcept {
    for (;;) {
      size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= n) break;
        i = next++;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        next = n;  // stop handing out work
      }
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    active = fan - 1;
  }
  for (size_t t = 0; t + 1 < fan; ++t) {
    pool->Submit([&] {
      drain();
      std::lock_guard<std::mutex> lock(mu);
      if (--active == 0) done_cv.notify_one();
    });
  }
  drain();  // the calling thread participates
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return active == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_THREAD_POOL_H_
