#include "common/fault_injection_env.h"

#include <algorithm>

namespace entropydb {

/// Wraps a base WritableFile, routing the fault triggers and the
/// synced-bytes accounting through the owning env.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

Status FaultWritableFile::Append(std::string_view data) {
  {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RETURN_NOT_OK(env_->CountOpLocked());
    ++env_->appends_;
    if (env_->fail_append_at_ != 0 &&
        env_->appends_ == env_->fail_append_at_) {
      return Status::IOError("injected write failure: " + path_);
    }
    if (env_->tear_append_at_ != 0 &&
        env_->appends_ == env_->tear_append_at_) {
      // Torn write: half the bytes land, then the "device" fails.
      const std::string_view half = data.substr(0, data.size() / 2);
      Status s = base_->Append(half);
      if (s.ok()) env_->files_[path_].written += half.size();
      return Status::IOError("injected torn write: " + path_);
    }
  }
  RETURN_NOT_OK(base_->Append(data));
  std::lock_guard<std::mutex> lock(env_->mu_);
  env_->files_[path_].written += data.size();
  return Status::OK();
}

Status FaultWritableFile::Sync() {
  {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RETURN_NOT_OK(env_->CountOpLocked());
  }
  RETURN_NOT_OK(base_->Sync());
  std::lock_guard<std::mutex> lock(env_->mu_);
  FaultInjectionEnv::FileState& state = env_->files_[path_];
  state.synced = state.written;
  state.ever_synced = true;
  return Status::OK();
}

Status FaultWritableFile::Close() {
  {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RETURN_NOT_OK(env_->CountOpLocked());
  }
  return base_->Close();
}

void FaultInjectionEnv::FailAppendAt(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  appends_ = 0;
  fail_append_at_ = n;
}

void FaultInjectionEnv::TearAppendAt(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  appends_ = 0;
  tear_append_at_ = n;
}

void FaultInjectionEnv::CrashAfter(int64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = 0;
  crash_after_ = k;
}

uint64_t FaultInjectionEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

void FaultInjectionEnv::ResetFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  ops_ = 0;
  crash_after_ = -1;
  appends_ = 0;
  fail_append_at_ = 0;
  tear_append_at_ = 0;
}

Status FaultInjectionEnv::LoseUnsyncedData() {
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files.swap(files_);
  }
  for (const auto& [path, state] : files) {
    if (!base_->FileExists(path)) continue;  // renamed away or removed
    if (!state.ever_synced) {
      RETURN_NOT_OK(base_->RemoveFile(path));
    } else if (state.synced < state.written) {
      RETURN_NOT_OK(base_->Truncate(path, state.synced));
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::CountOpLocked() {
  if (crash_after_ >= 0 &&
      ops_ >= static_cast<uint64_t>(crash_after_)) {
    return Status::IOError("injected crash");
  }
  ++ops_;
  return Status::OK();
}

Status FaultInjectionEnv::CountOp() {
  std::lock_guard<std::mutex> lock(mu_);
  return CountOpLocked();
}

void FaultInjectionEnv::RemapPrefixLocked(const std::string& from,
                                          const std::string& to) {
  const std::string from_prefix = from + "/";
  std::map<std::string, FileState> remapped;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first == from ||
        it->first.compare(0, from_prefix.size(), from_prefix) == 0) {
      std::string new_path =
          it->first == from ? to : to + "/" + it->first.substr(
                                             from_prefix.size());
      remapped.emplace(std::move(new_path), it->second);
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [path, state] : remapped) files_[path] = state;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  RETURN_NOT_OK(CountOp());
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                   base_->NewWritableFile(path, truncate));
  std::lock_guard<std::mutex> lock(mu_);
  if (truncate) {
    files_[path] = FileState{};
  } else if (files_.find(path) == files_.end()) {
    // Appending to a file that predates this env: its current bytes are
    // already durable.
    FileState state;
    auto size = base_->FileSize(path);
    state.written = size.ok() ? *size : 0;
    state.synced = state.written;
    state.ever_synced = true;
    files_[path] = state;
  }
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, path, std::move(base)));
}

Status FaultInjectionEnv::ReadFile(const std::string& path,
                                   std::string* out) {
  return base_->ReadFile(path, out);
}

Status FaultInjectionEnv::Rename(const std::string& from,
                                 const std::string& to) {
  RETURN_NOT_OK(CountOp());
  RETURN_NOT_OK(base_->Rename(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(to);
  RemapPrefixLocked(from, to);
  return Status::OK();
}

Status FaultInjectionEnv::PublishDir(const std::string& tmp,
                                     const std::string& dest) {
  RETURN_NOT_OK(CountOp());
  RETURN_NOT_OK(base_->PublishDir(tmp, dest));
  std::lock_guard<std::mutex> lock(mu_);
  // The old version's files (if tracked) are gone; the staged tree now
  // lives at dest.
  const std::string dest_prefix = dest + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.compare(0, dest_prefix.size(), dest_prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  RemapPrefixLocked(tmp, dest);
  return Status::OK();
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  RETURN_NOT_OK(CountOp());
  return base_->SyncDir(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  RETURN_NOT_OK(CountOp());
  return base_->CreateDirs(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::List(
    const std::string& dir) {
  return base_->List(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  RETURN_NOT_OK(CountOp());
  RETURN_NOT_OK(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveAll(const std::string& path) {
  RETURN_NOT_OK(CountOp());
  RETURN_NOT_OK(base_->RemoveAll(path));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = path + "/";
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first == path ||
        it->first.compare(0, prefix.size(), prefix) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::Truncate(const std::string& path, uint64_t size) {
  RETURN_NOT_OK(CountOp());
  RETURN_NOT_OK(base_->Truncate(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.written = std::min(it->second.written, size);
    it->second.synced = std::min(it->second.synced, size);
  }
  return Status::OK();
}

}  // namespace entropydb
