#ifndef ENTROPYDB_COMMON_RNG_H_
#define ENTROPYDB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace entropydb {

/// \brief Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All synthetic workloads and samplers use this generator so that every
/// experiment in the repository is exactly reproducible from its seed.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step; guarantees a non-zero, well-mixed state.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

/// \brief Zipf-distributed integer sampler over {0, .., n-1}.
///
/// Uses the inverse-CDF over precomputed cumulative weights (exact, O(log n)
/// per draw). Skew `s = 0` degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  /// Draws one value in [0, n).
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_RNG_H_
