#ifndef ENTROPYDB_COMMON_STATUS_H_
#define ENTROPYDB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace entropydb {

/// Error categories used across the library. Mirrors the coarse taxonomy of
/// RocksDB/Arrow status codes, restricted to what EntropyDB needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kDeadlineExceeded,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation that produces no value.
///
/// EntropyDB does not use exceptions; every fallible public API returns a
/// `Status` or a `Result<T>`. A `Status` is cheap to copy in the OK case
/// (empty message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usage:
///   RETURN_NOT_OK(DoThing());
#define RETURN_NOT_OK(expr)                    \
  do {                                         \
    ::entropydb::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_STATUS_H_
