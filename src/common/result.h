#ifndef ENTROPYDB_COMMON_RESULT_H_
#define ENTROPYDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace entropydb {

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Modeled on `arrow::Result`. Invariant: exactly one of {value, error} is
/// set; a `Result` constructed from an OK status is invalid and asserts.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  /// Status of the operation; OK when a value is present.
  const Status& status() const { return status_; }

  /// Returns the contained value. Must only be called when `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Convenience aliases matching Arrow naming.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates the error of a `Result` expression, otherwise assigns the value.
///   ASSIGN_OR_RETURN(auto table, LoadTable(path));
#define ENTROPYDB_CONCAT_INNER(a, b) a##b
#define ENTROPYDB_CONCAT(a, b) ENTROPYDB_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(lhs, expr)                          \
  auto ENTROPYDB_CONCAT(_res_, __LINE__) = (expr);           \
  if (!ENTROPYDB_CONCAT(_res_, __LINE__).ok())               \
    return ENTROPYDB_CONCAT(_res_, __LINE__).status();       \
  lhs = std::move(ENTROPYDB_CONCAT(_res_, __LINE__)).ValueOrDie()

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_RESULT_H_
