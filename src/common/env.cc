#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32c.h"

namespace entropydb {

namespace fs = std::filesystem;

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// stdio-backed writable file; Sync flushes the FILE* buffer then fsyncs.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::IOError("append to closed file: " + path_);
    }
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError(ErrnoMessage("write failure:", path_));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) {
      return Status::IOError("sync of closed file: " + path_);
    }
    if (std::fflush(file_) != 0) {
      return Status::IOError(ErrnoMessage("flush failure:", path_));
    }
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError(ErrnoMessage("fsync failure:", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    // fclose flushes; it is where a full disk's delayed write error often
    // first surfaces, so its return value must not be dropped.
    if (std::fclose(f) != 0) {
      return Status::IOError(ErrnoMessage("close failure:", path_));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) {
      return Status::IOError(ErrnoMessage("cannot open for writing:", path));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(f, path));
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError(ErrnoMessage("cannot open for reading:", path));
    }
    out->clear();
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out->append(buf, got);
    }
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed) return Status::IOError("read failure: " + path);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("cannot rename " + from + " to",
                                          to));
    }
    return Status::OK();
  }

  Status PublishDir(const std::string& tmp, const std::string& dest) override {
    std::error_code ec;
    if (!fs::exists(dest, ec)) {
      RETURN_NOT_OK(Rename(tmp, dest));
      return SyncDir(Parent(dest));
    }
    // Swap the staged directory with the live one, then drop the old
    // contents (now under the tmp name). RENAME_EXCHANGE keeps `dest`
    // continuously valid: it is the old version until the syscall, the
    // new one after.
    if (::renameat2(AT_FDCWD, tmp.c_str(), AT_FDCWD, dest.c_str(),
                    RENAME_EXCHANGE) != 0) {
      return Status::IOError(
          ErrnoMessage("cannot exchange " + tmp + " with", dest));
    }
    RETURN_NOT_OK(SyncDir(Parent(dest)));
    return RemoveAll(tmp);
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open directory:", path));
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::IOError(ErrnoMessage("fsync failure on directory:",
                                          path));
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IOError("cannot create directory " + path + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> List(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) {
      return Status::IOError("cannot list directory " + dir + ": " +
                             ec.message());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("cannot remove " + path +
                             (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Status RemoveAll(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) {
      return Status::IOError("cannot remove " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    const uint64_t size = fs::file_size(path, ec);
    if (ec) {
      return Status::IOError("cannot stat " + path + ": " + ec.message());
    }
    return size;
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      return Status::IOError("cannot truncate " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status LinkFile(const std::string& from, const std::string& to) override {
    if (::link(from.c_str(), to.c_str()) == 0) return Status::OK();
    if (errno == EXDEV || errno == EPERM || errno == EMLINK) {
      // Filesystem cannot hard-link (cross-device, or links disallowed):
      // degrade to the base class's byte copy.
      return Env::LinkFile(from, to);
    }
    return Status::IOError(ErrnoMessage("cannot link " + from + " to", to));
  }

 private:
  static std::string Parent(const std::string& path) {
    const std::string parent = fs::path(path).parent_path().string();
    return parent.empty() ? std::string(".") : parent;
  }
};

}  // namespace

Status Env::WriteFile(const std::string& path, std::string_view data,
                      bool sync) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   NewWritableFile(path, /*truncate=*/true));
  RETURN_NOT_OK(file->Append(data));
  if (sync) RETURN_NOT_OK(file->Sync());
  return file->Close();
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status Env::LinkFile(const std::string& from, const std::string& to) {
  std::string contents;
  RETURN_NOT_OK(ReadFile(from, &contents));
  return WriteFile(to, contents, /*sync=*/true);
}

namespace {

constexpr char kFooterTag[] = "crc32c ";
// "crc32c " + 8 hex digits + '\n'.
constexpr size_t kFooterSize = sizeof(kFooterTag) - 1 + 8 + 1;

std::string FooterFor(std::string_view payload) {
  char buf[kFooterSize + 1];
  std::snprintf(buf, sizeof(buf), "%s%08x\n", kFooterTag,
                crc32c::Value(payload));
  return std::string(buf, kFooterSize);
}

}  // namespace

Status WriteChecksummedFile(Env* env, const std::string& path,
                            std::string payload, bool sync) {
  payload += FooterFor(payload);
  return env->WriteFile(path, payload, sync);
}

Result<std::string> ReadChecksummedFile(Env* env, const std::string& path,
                                        bool verify, bool* had_footer) {
  std::string contents;
  RETURN_NOT_OK(env->ReadFile(path, &contents));
  if (had_footer != nullptr) *had_footer = false;
  if (contents.size() < kFooterSize ||
      contents.compare(contents.size() - kFooterSize,
                       sizeof(kFooterTag) - 1, kFooterTag) != 0 ||
      contents.back() != '\n') {
    // Legacy pre-checksum artifact: the caller decides whether its format
    // version tolerates that (v1/v2/v3 do; checksummed-era versions must
    // reject it as corruption).
    return contents;
  }
  const size_t footer_at = contents.size() - kFooterSize;
  if (had_footer != nullptr) *had_footer = true;
  if (verify) {
    const std::string hex =
        contents.substr(footer_at + sizeof(kFooterTag) - 1, 8);
    char* end = nullptr;
    const unsigned long stored = std::strtoul(hex.c_str(), &end, 16);
    const std::string_view payload(contents.data(), footer_at);
    if (end != hex.c_str() + 8 ||
        crc32c::Value(payload) != static_cast<uint32_t>(stored)) {
      return Status::Corruption("checksum mismatch in " + path);
    }
  }
  contents.resize(footer_at);
  return contents;
}

std::string StagingDirFor(const std::string& dir) {
  static std::atomic<uint64_t> seq{0};
  // Strip a trailing separator so "store/" stages as "store.tmp-...".
  std::string base = dir;
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  return base + ".tmp-" + std::to_string(::getpid()) + "-" +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

size_t SweepStaleEntries(Env* env, const std::string& dir,
                         const std::vector<std::string>& prefixes,
                         const std::vector<std::string>& keep) {
  auto entries = env->List(dir);
  if (!entries.ok()) return 0;
  size_t removed = 0;
  for (const std::string& entry : *entries) {
    const bool matches = std::any_of(
        prefixes.begin(), prefixes.end(), [&](const std::string& prefix) {
          return entry.compare(0, prefix.size(), prefix) == 0;
        });
    if (!matches) continue;
    if (std::find(keep.begin(), keep.end(), entry) != keep.end()) continue;
    if (env->RemoveAll(dir + "/" + entry).ok()) ++removed;
  }
  return removed;
}

void RemoveStaleStagingDirs(Env* env, const std::string& dir) {
  std::string base = dir;
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  const fs::path p(base);
  const std::string parent =
      p.parent_path().empty() ? std::string(".") : p.parent_path().string();
  const std::string name = p.filename().string();
  if (name.empty()) return;
  SweepStaleEntries(env, parent, {name + ".tmp-", name + ".old-"},
                    /*keep=*/{});
}

}  // namespace entropydb
