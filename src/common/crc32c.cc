#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace entropydb {
namespace crc32c {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

// Slicing-by-8 tables: kTables[k][b] is the CRC register contribution of
// byte b followed by k zero bytes, so eight table lookups retire eight
// input bytes per iteration instead of one.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xffu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ENTROPYDB_CRC32C_HW 1

/// SSE4.2 CRC32 instruction path (~an order of magnitude over the table
/// walk). Compiled with a per-function target attribute and only entered
/// after a runtime cpuid check, so the binary stays runnable on CPUs
/// without SSE4.2.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc,
                                                    const unsigned char* p,
                                                    size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool HaveHwCrc() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif  // __x86_64__

}  // namespace

namespace internal {

uint32_t ExtendPortable(uint32_t crc, std::string_view data) {
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t c = crc ^ 0xffffffffu;
  while (n >= 8) {
    c = kTables[7][(c ^ p[0]) & 0xffu] ^
        kTables[6][((c >> 8) ^ p[1]) & 0xffu] ^
        kTables[5][((c >> 16) ^ p[2]) & 0xffu] ^
        kTables[4][((c >> 24) ^ p[3]) & 0xffu] ^ kTables[3][p[4]] ^
        kTables[2][p[5]] ^ kTables[1][p[6]] ^ kTables[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace internal

uint32_t Extend(uint32_t crc, std::string_view data) {
#if defined(ENTROPYDB_CRC32C_HW)
  if (HaveHwCrc()) {
    return ExtendHw(crc ^ 0xffffffffu,
                    reinterpret_cast<const unsigned char*>(data.data()),
                    data.size()) ^
           0xffffffffu;
  }
#endif
  return internal::ExtendPortable(crc, data);
}

}  // namespace crc32c
}  // namespace entropydb
