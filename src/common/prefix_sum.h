#ifndef ENTROPYDB_COMMON_PREFIX_SUM_H_
#define ENTROPYDB_COMMON_PREFIX_SUM_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace entropydb {

/// \brief Inclusive prefix sums over a dense double array with O(1) interval
/// queries.
///
/// The MaxEnt evaluation oracle (Sec 4.2 of the paper) reduces every factor of
/// the compressed polynomial to "sum of masked alpha values over a bucket
/// interval"; this helper makes each such factor a constant-time lookup after
/// one O(N) build per (attribute, mask) pair.
class PrefixSum {
 public:
  PrefixSum() = default;

  explicit PrefixSum(const std::vector<double>& values) { Build(values); }

  /// Rebuilds from `values`; afterwards RangeSum(i, j) sums values[i..j].
  void Build(const std::vector<double>& values) {
    sums_.resize(values.size() + 1);
    sums_[0] = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
      sums_[i + 1] = sums_[i] + values[i];
    }
  }

  /// Sum of values[lo..hi], inclusive on both ends. Requires lo <= hi < size.
  double RangeSum(size_t lo, size_t hi) const {
    assert(hi + 1 < sums_.size() && lo <= hi);
    return sums_[hi + 1] - sums_[lo];
  }

  /// Sum over the whole array.
  double Total() const { return sums_.empty() ? 0.0 : sums_.back(); }

  size_t size() const { return sums_.empty() ? 0 : sums_.size() - 1; }

 private:
  std::vector<double> sums_;
};

/// \brief Difference array supporting range-add / point-read, the dual of
/// PrefixSum.
///
/// Used by the batched derivative engine: every compressed-polynomial group
/// contributes its cofactor to a contiguous interval of per-value derivative
/// slots, which is two point updates here followed by one finalize pass.
class DiffArray {
 public:
  explicit DiffArray(size_t n) : diff_(n + 1, 0.0) {}

  /// Adds `delta` to every slot in [lo, hi] inclusive.
  void RangeAdd(size_t lo, size_t hi, double delta) {
    assert(hi + 1 < diff_.size() && lo <= hi);
    diff_[lo] += delta;
    diff_[hi + 1] -= delta;
  }

  /// Materializes the accumulated values; invalidates further RangeAdd use
  /// until Clear().
  std::vector<double> Finalize() const {
    std::vector<double> out(diff_.size() - 1);
    double acc = 0.0;
    for (size_t i = 0; i + 1 < diff_.size(); ++i) {
      acc += diff_[i];
      out[i] = acc;
    }
    return out;
  }

  /// Resets all pending updates to zero.
  void Clear() { std::fill(diff_.begin(), diff_.end(), 0.0); }

  size_t size() const { return diff_.size() - 1; }

 private:
  std::vector<double> diff_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_PREFIX_SUM_H_
