#ifndef ENTROPYDB_COMMON_STR_UTIL_H_
#define ENTROPYDB_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace entropydb {

/// Splits `input` on `delim`, preserving empty fields.
std::vector<std::string> SplitString(std::string_view input, char delim);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_STR_UTIL_H_
