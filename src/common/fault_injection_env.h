#ifndef ENTROPYDB_COMMON_FAULT_INJECTION_ENV_H_
#define ENTROPYDB_COMMON_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"

namespace entropydb {

class FaultWritableFile;

/// \brief Env test double that injects filesystem faults (the RocksDB
/// FaultInjectionTestEnv idea, sized for EntropyDB).
///
/// Wraps a base Env (Env::Default() unless told otherwise) and adds three
/// failure modes the crash-safety suites drive:
///
///  1. **Write failures**: `FailAppendAt(n)` makes the n-th Append (1-based,
///     counted across all files) fail without writing; `TearAppendAt(n)`
///     makes it write only the first half of its bytes and then fail — a
///     torn write.
///  2. **Crash points**: every mutating Env operation (append, sync, file
///     close, rename, publish, remove, dir sync) increments an op counter.
///     `CrashAfter(k)` makes every mutation past the first k fail with
///     kIOError "injected crash"; `ops()` after a clean run enumerates the
///     crash points a test matrix should sweep.
///  3. **Un-synced data loss**: the env tracks, per file written through
///     it, how many bytes were covered by a successful Sync.
///     `LoseUnsyncedData()` — "the machine rebooted" — truncates every
///     tracked file to its last synced size and deletes files never synced
///     at all. Correct persistence code (sync before publish) survives
///     this; code that skips a sync loses its tail and fails the matrix.
///
/// Reads pass through unchanged. The class is thread-safe (persistence
/// code fans writes out on the shared pool).
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  // -- Fault controls ----------------------------------------------------
  /// Fails the n-th Append from now on (1-based); 0 disables.
  void FailAppendAt(uint64_t n);
  /// Tears the n-th Append from now on (writes half, then fails).
  void TearAppendAt(uint64_t n);
  /// Makes every mutating op after the first `k` fail. Negative disables.
  void CrashAfter(int64_t k);
  /// Total mutating ops performed (the crash-matrix upper bound).
  uint64_t ops() const;
  /// Resets counters and fault triggers (tracked sync state survives).
  void ResetFaults();

  /// Simulates power loss: truncates tracked files to their synced size,
  /// removes tracked files that were never synced, and forgets the
  /// tracking state. Files never written through this env are untouched.
  Status LoseUnsyncedData();

  // -- Env interface -----------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status ReadFile(const std::string& path, std::string* out) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status PublishDir(const std::string& tmp, const std::string& dest) override;
  Status SyncDir(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;

 private:
  friend class FaultWritableFile;

  struct FileState {
    uint64_t written = 0;
    uint64_t synced = 0;
    bool ever_synced = false;
  };

  /// Returns non-OK when the op counter has passed the crash point. Every
  /// mutating entry point calls this first.
  Status CountOp();
  Status CountOpLocked();
  /// Remaps tracked paths under `from` to live under `to` (dir renames).
  void RemapPrefixLocked(const std::string& from, const std::string& to);

  Env* base_;
  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  uint64_t ops_ = 0;
  int64_t crash_after_ = -1;
  uint64_t appends_ = 0;
  uint64_t fail_append_at_ = 0;
  uint64_t tear_append_at_ = 0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_FAULT_INJECTION_ENV_H_
