#ifndef ENTROPYDB_COMMON_TIMER_H_
#define ENTROPYDB_COMMON_TIMER_H_

#include <chrono>

namespace entropydb {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_TIMER_H_
