#ifndef ENTROPYDB_COMMON_CRC32C_H_
#define ENTROPYDB_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace entropydb {
namespace crc32c {

/// Extends `crc` (a previous Value(), or 0) with `data`. CRC32C
/// (Castagnoli polynomial), the checksum RocksDB and LevelDB frame their
/// log records with. Uses the SSE4.2 CRC32 instruction when the CPU has
/// it (runtime-dispatched) and a slicing-by-8 table walk otherwise —
/// verification has to be cheap enough to leave on for every store open.
uint32_t Extend(uint32_t crc, std::string_view data);

namespace internal {
/// The table-driven fallback, exposed so tests can pin it against the
/// hardware path on machines where both exist.
uint32_t ExtendPortable(uint32_t crc, std::string_view data);
}  // namespace internal

/// CRC32C of `data`.
inline uint32_t Value(std::string_view data) { return Extend(0, data); }

/// Masked CRC for embedding inside checksummed payloads (the LevelDB
/// idiom): a CRC stored alongside the bytes it covers is rotated and
/// offset so that computing the CRC of a string containing embedded CRCs
/// does not degenerate.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_CRC32C_H_
