#ifndef ENTROPYDB_COMMON_ENV_H_
#define ENTROPYDB_COMMON_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace entropydb {

/// \brief An open file being written through an Env.
///
/// Durability contract: Append buffers arbitrarily; bytes are guaranteed on
/// stable storage only after a successful Sync. Close flushes to the OS but
/// does NOT sync — a crash after Close but before Sync may lose the tail.
/// Persistence code that publishes atomically (store Save, the ingest WAL)
/// must Sync before the publishing rename; FaultInjectionEnv exists to
/// prove that it does.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  /// Flushes library + OS buffers to stable storage (fsync).
  virtual Status Sync() = 0;
  /// Flushes and closes. Returns the first error seen, including delayed
  /// write errors the OS reports at close — a full disk must not look like
  /// a successful save.
  virtual Status Close() = 0;
};

/// \brief Thin filesystem interface every persistence path goes through.
///
/// Mirrors the (much larger) RocksDB Env idea, restricted to what
/// EntropyDB's persistence needs: whole-file reads, append-style writes,
/// renames, syncs, and directory listing. Production code uses
/// Env::Default() (PosixEnv below); crash and corruption tests substitute
/// FaultInjectionEnv (common/fault_injection_env.h) to fail the Nth write,
/// tear a write in half, or drop un-synced data at a simulated crash
/// point. Methods return Status — callers are expected to propagate, never
/// to assume a write "just worked".
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing. `truncate` replaces any existing contents;
  /// truncate = false appends (the WAL's mode).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate = true) = 0;

  /// Reads the entire file into `*out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// POSIX rename: atomic, replaces an existing FILE at `to`.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Atomically publishes directory `tmp` at `dest`: when `dest` does not
  /// exist this is a plain rename; when it does, the two directories are
  /// swapped (renameat2 RENAME_EXCHANGE) and the old contents removed, so
  /// a reader never observes a partially-written `dest`. The parent
  /// directory is synced afterwards to make the publication durable.
  virtual Status PublishDir(const std::string& tmp,
                            const std::string& dest) = 0;

  /// fsyncs a directory so its entries (creations, renames) are durable.
  virtual Status SyncDir(const std::string& path) = 0;

  virtual Status CreateDirs(const std::string& path) = 0;
  /// Names (not paths) of the entries of `dir`, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& dir) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Recursive removal; missing paths are OK (idempotent cleanup).
  virtual Status RemoveAll(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Truncates an existing file to `size` bytes (fault injection uses
  /// this to drop un-synced tails; PosixEnv implements it for symmetry).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Makes `to` refer to the same bytes as `from` without copying when the
  /// filesystem allows it (hard link); the default implementation copies
  /// through ReadFile/WriteFile, which is also the PosixEnv fallback for
  /// cross-device links. Version cloning (storage/version_set.h) uses this
  /// to derive a new store version from the previous one at O(files) cost
  /// instead of O(bytes). Callers must treat the linked file as immutable:
  /// appending through one name would mutate the other. Test Envs that
  /// inherit the default get fault-injected copies for free.
  virtual Status LinkFile(const std::string& from, const std::string& to);

  /// Convenience: create/truncate `path`, write `data`, optionally Sync,
  /// then Close, propagating the first error.
  Status WriteFile(const std::string& path, std::string_view data,
                   bool sync = true);

  /// The process-wide PosixEnv singleton.
  static Env* Default();
};

// ---------------------------------------------------------------------
// Checksummed text artifacts.
//
// Every EntropyDB text artifact (summary .edb, sample .eds, store
// MANIFEST) is persisted with a CRC32C footer line "crc32c <8 hex>\n"
// computed over every preceding byte. Readers verify the footer before
// parsing and return kCorruption on mismatch — a bit-flip is rejected, not
// loaded as silently-wrong estimates. Artifacts from the pre-checksum era
// carry no footer; they load with a warning (stderr), keeping v1/v2/v3
// stores readable.

/// Appends the CRC32C footer to `payload` and writes it through `env`.
Status WriteChecksummedFile(Env* env, const std::string& path,
                            std::string payload, bool sync = true);

/// Reads `path`, verifies and strips the CRC32C footer, and returns the
/// payload. A missing footer is tolerated (legacy artifact): the full
/// contents are returned and `*had_footer` (optional) is set false — the
/// caller decides whether its format version requires one. A present but
/// mismatching footer is kCorruption. `verify` = false skips the CRC
/// computation (bench_durability's checksums-off mode) but still strips
/// the footer.
Result<std::string> ReadChecksummedFile(Env* env, const std::string& path,
                                        bool verify = true,
                                        bool* had_footer = nullptr);

// ---------------------------------------------------------------------
// Atomic directory publication.
//
// Store saves stage everything into "<dir>.tmp-<pid>-<seq>", sync each
// file and the staged directory, then Env::PublishDir the stage at `dir`
// in one step — a crash at any point leaves either the old version or the
// new one, never a mix. A crash between staging and publication strands a
// tmp directory; loads garbage-collect those.

/// A fresh staging name next to `dir` ("<dir>.tmp-<pid>-<seq>"); the pid +
/// process-local sequence keep concurrent savers from colliding.
std::string StagingDirFor(const std::string& dir);

/// The ONE staleness rule every directory garbage collector applies
/// (ShardedStore::Load's unreferenced-shard sweep, VersionSet's
/// retired-version and stranded-publish sweep, the `.tmp-` staging GC):
/// an entry of `dir` is stale — and removed — exactly when its name
/// starts with one of `prefixes` and is NOT listed in `keep`. Removal is
/// best-effort and recursive; a sweep must never fail the open or publish
/// that runs it, so errors are swallowed. Returns the number of entries
/// removed. Factoring the rule here keeps the shard GC and the version GC
/// from drifting apart (they once each had their own loop).
size_t SweepStaleEntries(Env* env, const std::string& dir,
                         const std::vector<std::string>& prefixes,
                         const std::vector<std::string>& keep);

/// Best-effort removal of stranded "<base>.tmp-*" / "<base>.old-*"
/// siblings of `dir` left behind by a crashed save. Errors are swallowed
/// (GC must never fail an open); call on every store load. Implemented as
/// a SweepStaleEntries over `dir`'s parent.
void RemoveStaleStagingDirs(Env* env, const std::string& dir);

}  // namespace entropydb

#endif  // ENTROPYDB_COMMON_ENV_H_
