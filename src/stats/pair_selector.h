#ifndef ENTROPYDB_STATS_PAIR_SELECTOR_H_
#define ENTROPYDB_STATS_PAIR_SELECTOR_H_

#include <utility>
#include <vector>

#include "storage/table.h"

namespace entropydb {

/// \brief An attribute pair scored by correlation strength.
struct ScoredPair {
  AttrId a = 0;
  AttrId b = 0;
  double cramers_v = 0.0;
  double chi_squared = 0.0;
};

/// Strategy for picking which Ba attribute pairs receive 2-D statistics
/// (Sec 4.3 "attribute cover vs attribute correlation").
enum class PairStrategy {
  /// Most correlated pairs such that every chosen pair contributes at least
  /// one attribute not present in a previously chosen (more correlated) pair.
  kCorrelationOnly,
  /// Maximize attribute coverage: prefer pairs whose attributes are not yet
  /// covered, ranked by correlation within each coverage class. The paper's
  /// evaluation concludes this yields better accuracy per budget.
  kAttributeCover,
};

/// \brief Ranks attribute pairs of a table by Cramér's V and applies a pair
/// selection strategy.
class PairSelector {
 public:
  /// Scores all attribute pairs (optionally excluding some attributes, e.g.
  /// near-uniform ones like flight date), most correlated first.
  static std::vector<ScoredPair> RankPairs(
      const Table& table, const std::vector<AttrId>& exclude = {});

  /// Picks `ba` pairs from a ranked list according to `strategy`.
  static std::vector<ScoredPair> Choose(const std::vector<ScoredPair>& ranked,
                                        size_t ba, PairStrategy strategy);
};

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_PAIR_SELECTOR_H_
