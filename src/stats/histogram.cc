#include "stats/histogram.h"

#include <cassert>

namespace entropydb {

Histogram2D::Histogram2D(uint32_t na, uint32_t nb,
                         std::vector<uint64_t> counts)
    : na_(na), nb_(nb), counts_(std::move(counts)) {
  assert(counts_.size() == static_cast<size_t>(na_) * nb_);
  sat_.assign(static_cast<size_t>(na_ + 1) * (nb_ + 1), 0.0);
  sat_sq_.assign(static_cast<size_t>(na_ + 1) * (nb_ + 1), 0.0);
  for (uint32_t i = 0; i < na_; ++i) {
    for (uint32_t j = 0; j < nb_; ++j) {
      double c = static_cast<double>(counts_[i * nb_ + j]);
      total_ += counts_[i * nb_ + j];
      size_t idx = static_cast<size_t>(i + 1) * (nb_ + 1) + (j + 1);
      sat_[idx] = c + S(i, j + 1) + S(i + 1, j) - S(i, j);
      sat_sq_[idx] = c * c + S2(i, j + 1) + S2(i + 1, j) - S2(i, j);
    }
  }
}

std::vector<uint64_t> Histogram2D::RowMarginal() const {
  std::vector<uint64_t> m(na_, 0);
  for (uint32_t i = 0; i < na_; ++i) {
    for (uint32_t j = 0; j < nb_; ++j) m[i] += counts_[i * nb_ + j];
  }
  return m;
}

std::vector<uint64_t> Histogram2D::ColMarginal() const {
  std::vector<uint64_t> m(nb_, 0);
  for (uint32_t i = 0; i < na_; ++i) {
    for (uint32_t j = 0; j < nb_; ++j) m[j] += counts_[i * nb_ + j];
  }
  return m;
}

uint64_t Histogram2D::NumZeroCells() const {
  uint64_t z = 0;
  for (uint64_t c : counts_) z += (c == 0) ? 1 : 0;
  return z;
}

}  // namespace entropydb
