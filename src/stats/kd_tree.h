#ifndef ENTROPYDB_STATS_KD_TREE_H_
#define ENTROPYDB_STATS_KD_TREE_H_

#include <vector>

#include "stats/histogram.h"
#include "stats/statistic.h"

namespace entropydb {

/// Split-selection rule for the 2-D KD partitioner.
enum class KdSplitRule {
  /// The paper's modification (Sec 4.3, Fig 2a): choose the split position
  /// minimizing the total sum of squared deviations from each half's mean,
  /// so the partition best represents the true cell values.
  kMinSse,
  /// Traditional KD-tree: split at the count median so both halves hold
  /// roughly equal mass. Kept as the ablation baseline.
  kMedian,
};

/// \brief A leaf rectangle of the KD partition, with its aggregate count.
struct KdRect {
  Interval a;  ///< rows of the histogram (first attribute)
  Interval b;  ///< cols of the histogram (second attribute)
  double count = 0.0;
};

/// \brief The paper's modified 2-D KD-tree (COMPOSITE heuristic, Sec 4.3).
///
/// Recursively partitions the Di1 x Di2 grid into `budget` disjoint
/// rectangles that exactly cover the grid. The splitting dimension
/// alternates with depth (falling back to the other dimension when one is
/// exhausted); the split position follows `rule`. Leaves are refined
/// greedily in order of largest current SSE, so detail concentrates where
/// the distribution is least uniform.
class KdTreePartitioner {
 public:
  explicit KdTreePartitioner(KdSplitRule rule = KdSplitRule::kMinSse)
      : rule_(rule) {}

  /// Partitions `hist` into at most `budget` rectangles (fewer when the grid
  /// has fewer cells than the budget).
  std::vector<KdRect> Partition(const Histogram2D& hist, size_t budget) const;

 private:
  struct Node {
    Interval a, b;
    int depth = 0;
    double sse = 0.0;
  };

  /// Finds the best split of `node` along `dim` (0 = rows, 1 = cols).
  /// Returns false when that dimension has width 1.
  bool BestSplit(const Histogram2D& hist, const Node& node, int dim,
                 Code* split_after, double* cost) const;

  KdSplitRule rule_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_KD_TREE_H_
