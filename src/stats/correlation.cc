#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace entropydb {

double ChiSquared(const Histogram2D& hist) {
  const auto row = hist.RowMarginal();
  const auto col = hist.ColMarginal();
  const double n = static_cast<double>(hist.total());
  if (n == 0.0) return 0.0;
  double chi2 = 0.0;
  for (uint32_t i = 0; i < hist.rows(); ++i) {
    if (row[i] == 0) continue;
    for (uint32_t j = 0; j < hist.cols(); ++j) {
      if (col[j] == 0) continue;
      double expected =
          static_cast<double>(row[i]) * static_cast<double>(col[j]) / n;
      double diff = static_cast<double>(hist.at(i, j)) - expected;
      chi2 += diff * diff / expected;
    }
  }
  return chi2;
}

namespace {
/// Counts non-empty rows/columns — empty slices carry no signal.
std::pair<uint32_t, uint32_t> EffectiveDims(const Histogram2D& hist) {
  const auto row = hist.RowMarginal();
  const auto col = hist.ColMarginal();
  uint32_t r = 0, c = 0;
  for (auto v : row) r += (v > 0) ? 1 : 0;
  for (auto v : col) c += (v > 0) ? 1 : 0;
  return {r, c};
}
}  // namespace

double CramersVCorrected(const Histogram2D& hist) {
  const double n = static_cast<double>(hist.total());
  if (n <= 1.0) return 0.0;
  auto [r, c] = EffectiveDims(hist);
  if (r <= 1 || c <= 1) return 0.0;
  const double phi2 = ChiSquared(hist) / n;
  const double rd = r, cd = c;
  const double phi2_corr =
      std::max(0.0, phi2 - (rd - 1.0) * (cd - 1.0) / (n - 1.0));
  const double r_corr = rd - (rd - 1.0) * (rd - 1.0) / (n - 1.0);
  const double c_corr = cd - (cd - 1.0) * (cd - 1.0) / (n - 1.0);
  const double k = std::min(r_corr, c_corr) - 1.0;
  if (k <= 0.0) return 0.0;
  return std::min(std::sqrt(phi2_corr / k), 1.0);
}

double CramersV(const Histogram2D& hist) {
  const double n = static_cast<double>(hist.total());
  if (n == 0.0) return 0.0;
  // Effective dimensions: ignore empty rows/columns, which carry no signal.
  const auto row = hist.RowMarginal();
  const auto col = hist.ColMarginal();
  uint32_t r = 0, c = 0;
  for (auto v : row) r += (v > 0) ? 1 : 0;
  for (auto v : col) c += (v > 0) ? 1 : 0;
  uint32_t k = std::min(r, c);
  if (k <= 1) return 0.0;
  double v = std::sqrt(ChiSquared(hist) / (n * (k - 1)));
  return std::min(v, 1.0);
}

}  // namespace entropydb
