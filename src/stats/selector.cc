#include "stats/selector.h"

#include <algorithm>

namespace entropydb {

const char* SelectionHeuristicName(SelectionHeuristic h) {
  switch (h) {
    case SelectionHeuristic::kLargeSingleCell:
      return "LARGE";
    case SelectionHeuristic::kZeroSingleCell:
      return "ZERO";
    case SelectionHeuristic::kComposite:
      return "COMPOSITE";
  }
  return "?";
}

namespace {

/// One histogram cell with its coordinates, for sorting.
struct Cell {
  Code a;
  Code b;
  uint64_t count;
};

std::vector<Cell> AllCells(const Histogram2D& hist) {
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(hist.rows()) * hist.cols());
  for (Code i = 0; i < hist.rows(); ++i) {
    for (Code j = 0; j < hist.cols(); ++j) {
      cells.push_back(Cell{i, j, hist.at(i, j)});
    }
  }
  return cells;
}

MultiDimStatistic PointStat(AttrId a, AttrId b, const Cell& c) {
  return Make2DStatistic(a, Interval{c.a, c.a}, b, Interval{c.b, c.b},
                         static_cast<double>(c.count));
}

}  // namespace

std::vector<MultiDimStatistic> StatisticSelector::Select(const Table& table,
                                                         AttrId a, AttrId b,
                                                         size_t budget) const {
  ExactEvaluator eval(table);
  Histogram2D hist(table.domain(a).size(), table.domain(b).size(),
                   eval.Histogram2D(a, b));
  return SelectFromHistogram(hist, a, b, budget);
}

std::vector<MultiDimStatistic> StatisticSelector::SelectFromHistogram(
    const Histogram2D& hist, AttrId a, AttrId b, size_t budget) const {
  std::vector<MultiDimStatistic> out;
  if (budget == 0) return out;

  switch (heuristic_) {
    case SelectionHeuristic::kLargeSingleCell: {
      auto cells = AllCells(hist);
      // Bs most popular values; ties broken by grid order for determinism.
      std::stable_sort(cells.begin(), cells.end(),
                       [](const Cell& x, const Cell& y) {
                         return x.count > y.count;
                       });
      for (size_t i = 0; i < cells.size() && out.size() < budget; ++i) {
        out.push_back(PointStat(a, b, cells[i]));
      }
      break;
    }
    case SelectionHeuristic::kZeroSingleCell: {
      auto cells = AllCells(hist);
      // Empty cells first. A 1-D-only MaxEnt model hallucinates mass
      // proportional to the product of the marginals, so we pin the empty
      // cells with the largest expected phantom count first — they are the
      // false positives the heuristic exists to kill (Sec 4.3).
      auto rows = hist.RowMarginal();
      auto cols = hist.ColMarginal();
      std::vector<Cell> zeros;
      for (const Cell& c : cells) {
        if (c.count == 0) zeros.push_back(c);
      }
      std::stable_sort(zeros.begin(), zeros.end(),
                       [&](const Cell& x, const Cell& y) {
                         return static_cast<double>(rows[x.a]) * cols[x.b] >
                                static_cast<double>(rows[y.a]) * cols[y.b];
                       });
      for (const Cell& c : zeros) {
        if (out.size() >= budget) break;
        out.push_back(PointStat(a, b, c));
      }
      if (out.size() < budget) {
        std::stable_sort(cells.begin(), cells.end(),
                         [](const Cell& x, const Cell& y) {
                           return x.count > y.count;
                         });
        for (const Cell& c : cells) {
          if (out.size() >= budget) break;
          if (c.count > 0) out.push_back(PointStat(a, b, c));
        }
      }
      break;
    }
    case SelectionHeuristic::kComposite: {
      KdTreePartitioner kd(rule_);
      for (const KdRect& r : kd.Partition(hist, budget)) {
        out.push_back(Make2DStatistic(a, r.a, b, r.b, r.count));
      }
      break;
    }
  }
  return out;
}

}  // namespace entropydb
