#ifndef ENTROPYDB_STATS_SELECTOR_H_
#define ENTROPYDB_STATS_SELECTOR_H_

#include <vector>

#include "query/exact_evaluator.h"
#include "stats/histogram.h"
#include "stats/kd_tree.h"
#include "stats/statistic.h"
#include "storage/table.h"

namespace entropydb {

/// The three 2-D statistic selection heuristics of Sec 4.3.
enum class SelectionHeuristic {
  /// Bs most populated single cells (point statistics).
  kLargeSingleCell,
  /// Bs empty cells first (zero statistics pin phantom mass to 0), topped up
  /// with the most populated cells when fewer than Bs cells are empty.
  kZeroSingleCell,
  /// Modified KD-tree partition of the whole grid into Bs disjoint
  /// rectangles — the paper's recommended default.
  kComposite,
};

const char* SelectionHeuristicName(SelectionHeuristic h);

/// \brief Selects 2-D statistics on one attribute pair under a per-pair
/// budget Bs, per the chosen heuristic.
///
/// The returned statistics always satisfy the paper's compression
/// assumptions: rectangular range predicates, pairwise disjoint for the same
/// attribute pair.
class StatisticSelector {
 public:
  StatisticSelector(SelectionHeuristic heuristic,
                    KdSplitRule rule = KdSplitRule::kMinSse)
      : heuristic_(heuristic), rule_(rule) {}

  /// Chooses up to `budget` statistics over attributes (a, b) of `table`.
  std::vector<MultiDimStatistic> Select(const Table& table, AttrId a,
                                        AttrId b, size_t budget) const;

  /// Same, from a precomputed contingency table.
  std::vector<MultiDimStatistic> SelectFromHistogram(const Histogram2D& hist,
                                                     AttrId a, AttrId b,
                                                     size_t budget) const;

 private:
  SelectionHeuristic heuristic_;
  KdSplitRule rule_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_SELECTOR_H_
