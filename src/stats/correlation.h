#ifndef ENTROPYDB_STATS_CORRELATION_H_
#define ENTROPYDB_STATS_CORRELATION_H_

#include "stats/histogram.h"

namespace entropydb {

/// Pearson chi-squared statistic of independence for a 2-D contingency
/// table. Cells whose expected count is zero (empty marginal) contribute
/// nothing. The paper uses this to detect uniform (uncorrelated) attribute
/// pairs (Sec 4.3, footnote 5).
double ChiSquared(const Histogram2D& hist);

/// Cramér's V in [0, 1]: chi-squared normalized by table size and the
/// smaller dimension. Used to rank attribute pairs by correlation strength
/// when choosing which pairs receive 2-D statistics (Sec 4.3 / Sec 6.2).
double CramersV(const Histogram2D& hist);

/// Bias-corrected Cramér's V (Bergsma 2013). Plain V is strongly inflated
/// on sparse tables (many cells, few rows) — e.g. two independent
/// attributes over a 307 x 81 grid with 30k rows score V ~ 0.1 by chance.
/// The correction subtracts the independence expectation of phi^2 and
/// shrinks the effective dimensions, making near-uniform pairs (like the
/// flights date attribute) score ~0 as the paper's selection logic assumes.
double CramersVCorrected(const Histogram2D& hist);

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_CORRELATION_H_
