#include "stats/pair_selector.h"

#include <algorithm>
#include <set>

#include "query/exact_evaluator.h"
#include "stats/correlation.h"
#include "stats/histogram.h"

namespace entropydb {

std::vector<ScoredPair> PairSelector::RankPairs(
    const Table& table, const std::vector<AttrId>& exclude) {
  std::set<AttrId> excluded(exclude.begin(), exclude.end());
  ExactEvaluator eval(table);
  std::vector<ScoredPair> pairs;
  const auto m = static_cast<AttrId>(table.num_attributes());
  for (AttrId a = 0; a < m; ++a) {
    if (excluded.count(a)) continue;
    for (AttrId b = a + 1; b < m; ++b) {
      if (excluded.count(b)) continue;
      Histogram2D hist(table.domain(a).size(), table.domain(b).size(),
                       eval.Histogram2D(a, b));
      ScoredPair p;
      p.a = a;
      p.b = b;
      p.chi_squared = ChiSquared(hist);
      p.cramers_v = CramersVCorrected(hist);
      pairs.push_back(p);
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const ScoredPair& x, const ScoredPair& y) {
                     return x.cramers_v > y.cramers_v;
                   });
  return pairs;
}

std::vector<ScoredPair> PairSelector::Choose(
    const std::vector<ScoredPair>& ranked, size_t ba, PairStrategy strategy) {
  std::vector<ScoredPair> chosen;
  std::set<AttrId> covered;

  if (strategy == PairStrategy::kCorrelationOnly) {
    // Greedy by correlation; require each new pair to contribute at least one
    // new attribute so the budget is not spent twice on the same pair of
    // dimensions (paper Sec 4.3).
    for (const auto& p : ranked) {
      if (chosen.size() >= ba) break;
      if (covered.count(p.a) && covered.count(p.b)) continue;
      chosen.push_back(p);
      covered.insert(p.a);
      covered.insert(p.b);
    }
    return chosen;
  }

  // kAttributeCover: first take pairs that cover two new attributes, then
  // pairs covering one new attribute, then the rest — by correlation inside
  // each class.
  std::vector<bool> taken(ranked.size(), false);
  for (int want_new = 2; want_new >= 0; --want_new) {
    for (size_t i = 0; i < ranked.size() && chosen.size() < ba; ++i) {
      if (taken[i]) continue;
      const auto& p = ranked[i];
      int new_attrs = (covered.count(p.a) ? 0 : 1) +
                      (covered.count(p.b) ? 0 : 1);
      if (new_attrs != want_new) continue;
      chosen.push_back(p);
      taken[i] = true;
      covered.insert(p.a);
      covered.insert(p.b);
    }
  }
  return chosen;
}

}  // namespace entropydb
