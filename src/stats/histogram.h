#ifndef ENTROPYDB_STATS_HISTOGRAM_H_
#define ENTROPYDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "storage/domain.h"

namespace entropydb {

/// \brief Dense 2-D contingency table of two encoded attributes, with O(1)
/// rectangle sum / sum-of-squares queries via summed-area tables.
///
/// Backs the chi-squared correlation test, all three statistic-selection
/// heuristics, and the KD-tree's SSE split search.
class Histogram2D {
 public:
  /// `counts` is row-major [ca * nb + cb].
  Histogram2D(uint32_t na, uint32_t nb, std::vector<uint64_t> counts);

  uint32_t rows() const { return na_; }
  uint32_t cols() const { return nb_; }

  uint64_t at(Code a, Code b) const { return counts_[a * nb_ + b]; }
  uint64_t total() const { return total_; }

  /// Count sum over the inclusive rectangle [a0,a1] x [b0,b1].
  double RectSum(Code a0, Code a1, Code b0, Code b1) const {
    return S(a1 + 1, b1 + 1) - S(a0, b1 + 1) - S(a1 + 1, b0) + S(a0, b0);
  }

  /// Sum of squared cell counts over the inclusive rectangle.
  double RectSumSq(Code a0, Code a1, Code b0, Code b1) const {
    return S2(a1 + 1, b1 + 1) - S2(a0, b1 + 1) - S2(a1 + 1, b0) + S2(a0, b0);
  }

  /// Sum of squared deviations from the rectangle mean:
  ///   sum (x - mean)^2 = sum x^2 - (sum x)^2 / cells.
  double RectSse(Code a0, Code a1, Code b0, Code b1) const {
    double cells = static_cast<double>(a1 - a0 + 1) * (b1 - b0 + 1);
    double s = RectSum(a0, a1, b0, b1);
    return RectSumSq(a0, a1, b0, b1) - s * s / cells;
  }

  /// Row marginal (length na).
  std::vector<uint64_t> RowMarginal() const;
  /// Column marginal (length nb).
  std::vector<uint64_t> ColMarginal() const;

  /// Number of cells with zero count.
  uint64_t NumZeroCells() const;

 private:
  double S(size_t i, size_t j) const { return sat_[i * (nb_ + 1) + j]; }
  double S2(size_t i, size_t j) const { return sat_sq_[i * (nb_ + 1) + j]; }

  uint32_t na_;
  uint32_t nb_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  std::vector<double> sat_;     // summed-area table of counts
  std::vector<double> sat_sq_;  // summed-area table of squared counts
};

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_HISTOGRAM_H_
