#ifndef ENTROPYDB_STATS_STATISTIC_H_
#define ENTROPYDB_STATS_STATISTIC_H_

#include <string>
#include <vector>

#include "storage/domain.h"
#include "storage/schema.h"

namespace entropydb {

/// \brief Inclusive code interval [lo, hi] on one attribute.
struct Interval {
  Code lo = 0;
  Code hi = 0;

  bool Contains(Code c) const { return lo <= c && c <= hi; }
  uint32_t width() const { return hi - lo + 1; }

  /// Intersection; empty result has hi < lo.
  Interval Intersect(const Interval& o) const {
    Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
    return r;
  }
  bool empty() const { return hi < lo; }
  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
};

/// \brief A multi-dimensional statistic (c_j, s_j) from the paper (Sec 3.1):
/// a rectangular range predicate over a set of attributes together with the
/// observed count s_j = |sigma_pi(I)|.
///
/// Per the paper's assumptions (Sec 4.1): each predicate projects to a range
/// per attribute, and statistics over the same attribute set are disjoint.
/// 1-D statistics are not represented here — the MaxEnt summary always
/// carries the complete set of per-value 1-D statistics internally.
struct MultiDimStatistic {
  /// Constrained attributes, strictly increasing.
  std::vector<AttrId> attrs;
  /// Parallel to `attrs`: the range on each constrained attribute.
  std::vector<Interval> ranges;
  /// Observed count s_j.
  double target = 0.0;

  /// True when the rectangle contains the (full) encoded tuple.
  bool ContainsTuple(const std::vector<Code>& tuple) const {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (!ranges[i].Contains(tuple[attrs[i]])) return false;
    }
    return true;
  }

  std::string ToString(const Schema& schema) const {
    std::string out = "(";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += " AND ";
      out += schema.attribute(attrs[i]).name + " in [" +
             std::to_string(ranges[i].lo) + "," + std::to_string(ranges[i].hi) +
             "]";
    }
    out += ", " + std::to_string(target) + ")";
    return out;
  }
};

/// Convenience constructor for the common 2-D case.
inline MultiDimStatistic Make2DStatistic(AttrId a, Interval ra, AttrId b,
                                         Interval rb, double target) {
  MultiDimStatistic s;
  if (a < b) {
    s.attrs = {a, b};
    s.ranges = {ra, rb};
  } else {
    s.attrs = {b, a};
    s.ranges = {rb, ra};
  }
  s.target = target;
  return s;
}

}  // namespace entropydb

#endif  // ENTROPYDB_STATS_STATISTIC_H_
