#include "stats/kd_tree.h"

#include <cmath>
#include <limits>
#include <queue>

namespace entropydb {

namespace {

/// Heap entry: leaf with the largest SSE is refined first.
struct HeapLess {
  bool operator()(const std::pair<double, size_t>& x,
                  const std::pair<double, size_t>& y) const {
    return x.first < y.first;
  }
};

}  // namespace

bool KdTreePartitioner::BestSplit(const Histogram2D& hist, const Node& node,
                                  int dim, Code* split_after,
                                  double* cost) const {
  const Interval range = (dim == 0) ? node.a : node.b;
  if (range.width() <= 1) return false;

  double best_cost = std::numeric_limits<double>::infinity();
  Code best_pos = range.lo;
  bool found = false;

  if (rule_ == KdSplitRule::kMinSse) {
    // Minimize SSE(left half) + SSE(right half); O(1) per candidate thanks
    // to the histogram's summed-area tables.
    for (Code pos = range.lo; pos < range.hi; ++pos) {
      double c;
      if (dim == 0) {
        c = hist.RectSse(node.a.lo, pos, node.b.lo, node.b.hi) +
            hist.RectSse(pos + 1, node.a.hi, node.b.lo, node.b.hi);
      } else {
        c = hist.RectSse(node.a.lo, node.a.hi, node.b.lo, pos) +
            hist.RectSse(node.a.lo, node.a.hi, pos + 1, node.b.hi);
      }
      if (c < best_cost) {
        best_cost = c;
        best_pos = pos;
        found = true;
      }
    }
  } else {
    // Median rule: pick the position where the two halves' masses are most
    // balanced.
    for (Code pos = range.lo; pos < range.hi; ++pos) {
      double left, right;
      if (dim == 0) {
        left = hist.RectSum(node.a.lo, pos, node.b.lo, node.b.hi);
        right = hist.RectSum(pos + 1, node.a.hi, node.b.lo, node.b.hi);
      } else {
        left = hist.RectSum(node.a.lo, node.a.hi, node.b.lo, pos);
        right = hist.RectSum(node.a.lo, node.a.hi, pos + 1, node.b.hi);
      }
      double c = std::abs(left - right);
      if (c < best_cost) {
        best_cost = c;
        best_pos = pos;
        found = true;
      }
    }
  }

  *split_after = best_pos;
  *cost = best_cost;
  return found;
}

std::vector<KdRect> KdTreePartitioner::Partition(const Histogram2D& hist,
                                                 size_t budget) const {
  std::vector<Node> nodes;
  nodes.push_back(Node{{0, hist.rows() - 1},
                       {0, hist.cols() - 1},
                       0,
                       hist.RectSse(0, hist.rows() - 1, 0, hist.cols() - 1)});

  // Leaves ordered by SSE; refine the worst-represented rectangle first.
  std::priority_queue<std::pair<double, size_t>,
                      std::vector<std::pair<double, size_t>>, HeapLess>
      heap;
  heap.emplace(nodes[0].sse, 0);
  size_t num_leaves = 1;

  std::vector<bool> is_leaf{true};

  while (num_leaves < budget && !heap.empty()) {
    auto [sse, idx] = heap.top();
    heap.pop();
    Node node = nodes[idx];

    // Pick the splitting dimension. The min-SSE rule considers the best
    // split value across both domains (the paper's "lowest sum squared
    // average value difference", Fig 2a) and keeps depth alternation only
    // as the tie-break; the median rule alternates strictly like a
    // traditional KD-tree.
    int dim;
    Code pos = 0;
    double cost = 0.0;
    if (rule_ == KdSplitRule::kMinSse) {
      Code pos0 = 0, pos1 = 0;
      double cost0 = 0.0, cost1 = 0.0;
      bool ok0 = BestSplit(hist, node, 0, &pos0, &cost0);
      bool ok1 = BestSplit(hist, node, 1, &pos1, &cost1);
      if (!ok0 && !ok1) continue;  // single cell; cannot refine further
      bool use0;
      if (ok0 && ok1) {
        if (cost0 < cost1) {
          use0 = true;
        } else if (cost1 < cost0) {
          use0 = false;
        } else {
          use0 = (node.depth % 2 == 0);
        }
      } else {
        use0 = ok0;
      }
      dim = use0 ? 0 : 1;
      pos = use0 ? pos0 : pos1;
      cost = use0 ? cost0 : cost1;
    } else {
      dim = node.depth % 2;
      if (!BestSplit(hist, node, dim, &pos, &cost)) {
        dim = 1 - dim;
        if (!BestSplit(hist, node, dim, &pos, &cost)) {
          continue;  // single cell; cannot refine further
        }
      }
    }
    (void)cost;

    Node left = node, right = node;
    if (dim == 0) {
      left.a = {node.a.lo, pos};
      right.a = {pos + 1, node.a.hi};
    } else {
      left.b = {node.b.lo, pos};
      right.b = {pos + 1, node.b.hi};
    }
    left.depth = right.depth = node.depth + 1;
    left.sse = hist.RectSse(left.a.lo, left.a.hi, left.b.lo, left.b.hi);
    right.sse = hist.RectSse(right.a.lo, right.a.hi, right.b.lo, right.b.hi);

    is_leaf[idx] = false;
    size_t li = nodes.size();
    nodes.push_back(left);
    is_leaf.push_back(true);
    size_t ri = nodes.size();
    nodes.push_back(right);
    is_leaf.push_back(true);
    heap.emplace(left.sse, li);
    heap.emplace(right.sse, ri);
    ++num_leaves;
  }

  std::vector<KdRect> out;
  out.reserve(num_leaves);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!is_leaf[i]) continue;
    const Node& n = nodes[i];
    out.push_back(KdRect{
        n.a, n.b, hist.RectSum(n.a.lo, n.a.hi, n.b.lo, n.b.hi)});
  }
  return out;
}

}  // namespace entropydb
