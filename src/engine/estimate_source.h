#ifndef ENTROPYDB_ENGINE_ESTIMATE_SOURCE_H_
#define ENTROPYDB_ENGINE_ESTIMATE_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "maxent/summary.h"
#include "query/aggregate.h"
#include "query/counting_query.h"
#include "sampling/sample.h"
#include "sampling/sample_estimator.h"

namespace entropydb {

/// \brief One answerable backend behind the hybrid router: anything that can
/// turn a query into an estimate PLUS an expected variance.
///
/// The paper's central evaluation (Figs. 5-6) pits maxent summaries against
/// stratified/uniform samples; this interface is what lets the serving
/// engine hold BOTH kinds behind one surface and route each query to
/// whichever source expects the lower variance (see engine/query_router.h
/// and docs/ESTIMATORS.md for the per-source variance formulas).
///
/// The surface is the unified aggregate API: ONE Answer(AggregateQuery)
/// entry point for every kind a single source can serve (COUNT/SUM, and
/// AVG for summaries), plus the bare counting primitive the router's hot
/// path and the batcher fan out on. Results carry the SUM/COUNT moment
/// legs and their covariance so cross-shard merging stays exact.
///
/// Implementations are immutable after construction and safe to call
/// concurrently; the routed answer is always the chosen source's own answer
/// bit for bit.
class EstimateSource {
 public:
  /// Which estimator family a source belongs to — surfaced in routing
  /// decisions and by `entropydb_query --store`.
  enum class Kind { kSummary, kSample };

  virtual ~EstimateSource() = default;

  /// The source's estimator family.
  virtual Kind kind() const = 0;
  /// Display name, e.g. "maxent(origin,dest)" or "Strat(origin,dest)".
  virtual const std::string& name() const = 0;
  /// Arity of the relation this source summarizes.
  virtual size_t num_attributes() const = 0;
  /// COUNT(*) estimate with expected variance — the routing primitive.
  virtual Result<QueryEstimate> Answer(const CountingQuery& q) const = 0;
  /// The unified aggregate surface. Summaries answer COUNT/SUM/AVG;
  /// samples answer COUNT/SUM (with Horvitz-Thompson moment legs) and
  /// report kNotSupported for AVG. QUANTILE/TOPK/JOIN kinds derive at the
  /// engine facade and are kNotSupported on every single source.
  virtual Result<QueryResult> Answer(const AggregateQuery& q) const = 0;
};

/// \brief EstimateSource over a solved EntropySummary: multinomial-moment
/// variances (Binomial n p (1 - p) for counts, Sec 7 of the paper).
class SummarySource : public EstimateSource {
 public:
  /// Wraps a solved summary; `name` defaults to "maxent".
  explicit SummarySource(std::shared_ptr<const EntropySummary> summary,
                         std::string name = "maxent");

  Kind kind() const override { return Kind::kSummary; }
  const std::string& name() const override { return name_; }
  size_t num_attributes() const override {
    return summary_->num_attributes();
  }
  Result<QueryEstimate> Answer(const CountingQuery& q) const override {
    return summary_->Answer(q);
  }
  Result<QueryResult> Answer(const AggregateQuery& q) const override {
    return summary_->Answer(q);
  }

  /// The wrapped summary.
  const EntropySummary& summary() const { return *summary_; }

 private:
  std::shared_ptr<const EntropySummary> summary_;
  std::string name_;
};

/// \brief EstimateSource over a weighted row sample: Horvitz-Thompson
/// estimates with the sample-variance formulas of
/// sampling/sample_estimator.h (finite even when no sampled row matches).
class SampleSource : public EstimateSource {
 public:
  /// Wraps a sample; the display name is taken from the sample itself.
  explicit SampleSource(std::shared_ptr<const WeightedSample> sample);

  Kind kind() const override { return Kind::kSample; }
  const std::string& name() const override { return sample_->name; }
  size_t num_attributes() const override {
    return sample_->rows ? sample_->rows->num_attributes() : 0;
  }
  Result<QueryEstimate> Answer(const CountingQuery& q) const override;
  Result<QueryResult> Answer(const AggregateQuery& q) const override;

  /// The wrapped sample.
  const WeightedSample& sample() const { return *sample_; }
  std::shared_ptr<const WeightedSample> sample_ptr() const {
    return sample_;
  }

 private:
  std::shared_ptr<const WeightedSample> sample_;
  SampleEstimator estimator_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_ESTIMATE_SOURCE_H_
