#include "engine/estimate_source.h"

namespace entropydb {

SummarySource::SummarySource(std::shared_ptr<const EntropySummary> summary,
                             std::string name)
    : summary_(std::move(summary)), name_(std::move(name)) {}

SampleSource::SampleSource(std::shared_ptr<const WeightedSample> sample)
    : sample_(std::move(sample)), estimator_(*sample_) {}

Result<QueryEstimate> SampleSource::Answer(const CountingQuery& q) const {
  if (q.num_attributes() != num_attributes()) {
    return Status::InvalidArgument("query arity does not match the sample");
  }
  return estimator_.Count(q);
}

Result<QueryResult> SampleSource::Answer(const AggregateQuery& q) const {
  if (q.where.num_attributes() != num_attributes()) {
    return Status::InvalidArgument("query arity does not match the sample");
  }
  if (q.kind == AggregateKind::kCount) {
    QueryResult out;
    out.estimate = estimator_.Count(q.where);
    out.count = out.estimate;
    out.has_moments = true;
    out.route.expected_variance = out.estimate.variance;
    return out;
  }
  if (q.kind != AggregateKind::kSum) {
    return Status::NotSupported(
        std::string("aggregate kind ") + AggregateKindName(q.kind) +
        " does not answer from a sample source");
  }
  if (q.agg_attr >= num_attributes() ||
      q.weights.size() != sample_->rows->domain(q.agg_attr).size()) {
    return Status::InvalidArgument("bad aggregate attribute or weights");
  }
  // One matching-row pass fills both legs AND the covariance; the sum leg
  // is bitwise what the dedicated Sum accumulator reports.
  QueryResult out = estimator_.Moments(q.agg_attr, q.weights, q.where);
  out.estimate = out.sum;
  out.route.expected_variance = out.estimate.variance;
  return out;
}

}  // namespace entropydb
