#include "engine/estimate_source.h"

namespace entropydb {

SummarySource::SummarySource(std::shared_ptr<const EntropySummary> summary,
                             std::string name)
    : summary_(std::move(summary)), name_(std::move(name)) {}

SampleSource::SampleSource(std::shared_ptr<const WeightedSample> sample)
    : sample_(std::move(sample)), estimator_(*sample_) {}

Result<QueryEstimate> SampleSource::AnswerCount(
    const CountingQuery& q) const {
  if (q.num_attributes() != num_attributes()) {
    return Status::InvalidArgument("query arity does not match the sample");
  }
  return estimator_.Count(q);
}

Result<QueryEstimate> SampleSource::AnswerSum(
    AttrId a, const std::vector<double>& weights,
    const CountingQuery& q) const {
  if (q.num_attributes() != num_attributes()) {
    return Status::InvalidArgument("query arity does not match the sample");
  }
  if (a >= num_attributes() ||
      weights.size() != sample_->rows->domain(a).size()) {
    return Status::InvalidArgument("bad aggregate attribute or weights");
  }
  return estimator_.Sum(a, weights, q);
}

}  // namespace entropydb
