#include "engine/versioned.h"

namespace entropydb {

namespace {

/// Opens the root and requires a published current version — both
/// wrappers derive their clone from it.
Result<std::unique_ptr<VersionSet>> OpenNonEmpty(const std::string& root,
                                                 VersionSet::Options vopts,
                                                 Env* env) {
  ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> vs,
                   VersionSet::Open(root, env, vopts));
  if (vs->current() == 0) {
    return Status::FailedPrecondition(
        "versioned root has no published version: " + root);
  }
  return vs;
}

}  // namespace

Result<VersionAppendReport> AppendVersion(const std::string& root,
                                          const std::string& csv_text,
                                          StoreOptions opts,
                                          VersionSet::Options vopts,
                                          Env* env) {
  ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> vs,
                   OpenNonEmpty(root, vopts, env));
  const uint64_t id = vs->BeginVersion();
  RETURN_NOT_OK(vs->CloneCurrentTo(id));
  VersionAppendReport report;
  // The clone carries its own ingest.wal copy, so the append journals and
  // seals entirely inside the unpublished v<id>; a failure or crash here
  // leaves the current version untouched and the clone stranded for the
  // next open's sweep.
  ASSIGN_OR_RETURN(report.ingest,
                   AppendBatch(vs->VersionDir(id), csv_text, opts, env));
  RETURN_NOT_OK(vs->Publish(id));
  report.version = id;
  return report;
}

Result<VersionCompactReport> CompactVersion(const std::string& root,
                                            const CompactionOptions& opts,
                                            VersionSet::Options vopts,
                                            Env* env) {
  ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> vs,
                   OpenNonEmpty(root, vopts, env));
  VersionCompactReport report;
  // Plan against the live version before paying for a clone: most serve
  // loops call this on a timer and the triggers usually have not fired.
  ASSIGN_OR_RETURN(CompactionPlan plan,
                   CompactionPlanner::Plan(vs->CurrentDir(), opts, env));
  if (!plan.triggered) return report;
  const uint64_t id = vs->BeginVersion();
  RETURN_NOT_OK(vs->CloneCurrentTo(id));
  ASSIGN_OR_RETURN(report.compaction,
                   RunCompaction(vs->VersionDir(id), opts, env));
  if (!report.compaction.ran) {
    // Plan raced with nothing (single writer), but stay defensive: drop
    // the unused clone rather than publishing an identical version.
    env->RemoveAll(vs->VersionDir(id)).ok();
    return report;
  }
  RETURN_NOT_OK(vs->Publish(id));
  report.version = id;
  return report;
}

}  // namespace entropydb
