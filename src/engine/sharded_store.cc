#include "engine/sharded_store.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/thread_pool.h"

namespace entropydb {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestV3[] = "ENTROPYDB_STORE_V3";
constexpr char kManifestV4[] = "ENTROPYDB_STORE_V4";

std::string ManifestPayload(const ShardedStore::Manifest& m) {
  std::ostringstream out;
  out << kManifestV4 << " sharded\n";
  out << "scheme " << PartitionSpecToken({m.scheme, m.partition_attr})
      << "\n";
  out << "wal_sealed " << m.wal_sealed << "\n";
  out << "shards " << m.shard_dirs.size() << "\n";
  for (const std::string& d : m.shard_dirs) out << "shard " << d << "\n";
  // The zone-map section is optional: pre-pruning stores list none and
  // load unchanged (they simply never prune).
  if (!m.zonemap_dirs.empty()) {
    out << "zonemaps " << m.zonemap_dirs.size() << "\n";
    for (const std::string& d : m.zonemap_dirs) {
      out << "zonemap " << d << "\n";
    }
  }
  // Also optional: compaction lineage (engine/compaction.h) and the
  // per-shard row counts its planner triggers on. Both default silently
  // for pre-compaction-era manifests.
  if (m.compaction_gen > 0) out << "gen " << m.compaction_gen << "\n";
  if (m.shard_rows.size() == m.shard_dirs.size() && !m.shard_rows.empty()) {
    out << "shardrows " << m.shard_rows.size() << "\n";
    for (uint64_t r : m.shard_rows) out << "shardrow " << r << "\n";
  }
  return out.str();
}

/// Accumulates one shard's estimate into the merged answer. Disjoint row
/// partitions with independently fit models: expectations and variances
/// are both additive.
void MergeInto(QueryEstimate* merged, const QueryEstimate& shard) {
  merged->expectation += shard.expectation;
  merged->variance += shard.variance;
}

}  // namespace

ShardedStore::ShardedStore(
    std::vector<std::shared_ptr<SourceStore>> shards, PartitionScheme scheme,
    std::vector<std::shared_ptr<const ZoneMap>> zone_maps,
    AttrId partition_attr)
    : shards_(std::move(shards)),
      zone_maps_(std::move(zone_maps)),
      scheme_(scheme),
      partition_attr_(partition_attr) {
  engines_.reserve(shards_.size());
  for (const auto& s : shards_) {
    engines_.push_back(EntropyEngine::FromStore(s));
    total_n_ += s->n();
  }
}

Result<std::shared_ptr<ShardedStore>> ShardedStore::FromShards(
    std::vector<std::shared_ptr<SourceStore>> shards, PartitionScheme scheme,
    std::vector<std::shared_ptr<const ZoneMap>> zone_maps,
    AttrId partition_attr) {
  if (shards.empty()) {
    return Status::InvalidArgument("a sharded store needs at least one shard");
  }
  // Null checks must run before anything dereferences a shard (binding a
  // reference through a null front() would already be UB).
  for (const auto& s : shards) {
    if (s == nullptr) {
      return Status::InvalidArgument("sharded store with a null shard");
    }
  }
  const SourceStore& ref = *shards.front();
  for (const auto& s : shards) {
    if (s->num_attributes() != ref.num_attributes()) {
      return Status::InvalidArgument(
          "shards disagree on the relation arity");
    }
    for (AttrId a = 0; a < ref.num_attributes(); ++a) {
      // Shards of one relation share the base active domains verbatim; a
      // same-arity store of a different relation must not merge in (its
      // codes would be position-compatible but mean different values).
      if (s->entry(0).summary->registry().domain_size(a) !=
          ref.entry(0).summary->registry().domain_size(a)) {
        return Status::InvalidArgument(
            "shards disagree on the domain of attribute " +
            std::to_string(a));
      }
    }
  }
  if (zone_maps.empty()) {
    zone_maps.resize(shards.size());  // nulls: no shard ever prunes
  } else if (zone_maps.size() != shards.size()) {
    return Status::InvalidArgument(
        "zone map list must be empty or hold one entry per shard");
  }
  for (const auto& zm : zone_maps) {
    if (zm == nullptr) continue;
    if (zm->num_attributes() != ref.num_attributes()) {
      return Status::InvalidArgument(
          "zone map disagrees with the shards on the relation arity");
    }
    for (AttrId a = 0; a < ref.num_attributes(); ++a) {
      if (zm->domain_size(a) !=
          ref.entry(0).summary->registry().domain_size(a)) {
        return Status::InvalidArgument(
            "zone map disagrees on the domain of attribute " +
            std::to_string(a));
      }
    }
  }
  if (scheme == PartitionScheme::kAttribute &&
      partition_attr >= ref.num_attributes()) {
    return Status::InvalidArgument(
        "partition attribute " + std::to_string(partition_attr) +
        " out of range");
  }
  return std::shared_ptr<ShardedStore>(
      new ShardedStore(std::move(shards), scheme, std::move(zone_maps),
                       partition_attr));
}

Result<std::shared_ptr<ShardedStore>> ShardedStore::Build(const Table& table,
                                                          ShardedOptions opts) {
  PartitionOptions popts;
  popts.num_shards = opts.num_shards;
  popts.scheme = opts.scheme;
  popts.hash_seed = opts.hash_seed;
  popts.partition_attr = opts.partition_attr;
  ASSIGN_OR_RETURN(std::vector<std::shared_ptr<Table>> shards,
                   TablePartitioner::Partition(table, popts));

  // Resolve pairs ONCE on the full relation (the same step a monolithic
  // Build runs), then force the choice into every shard: shards must
  // agree on the modeled pairs (routing metadata) and repeating the
  // O(rows x m^2) ranking per shard would waste exactly the scan the
  // partitioning is trying to split.
  StoreOptions shard_opts = opts.store;
  ASSIGN_OR_RETURN(shard_opts.forced_pairs,
                   SourceStore::ResolvePairs(table, shard_opts));
  shard_opts.use_budget_advisor = false;

  // Independent per-shard builds fan out across the pool; each build's own
  // internal ParallelFor calls degrade inline on worker threads. Outputs
  // land in disjoint slots, so the result is deterministic.
  std::vector<std::shared_ptr<SourceStore>> built(shards.size());
  std::vector<std::shared_ptr<const ZoneMap>> zone_maps(shards.size());
  std::vector<Status> statuses(shards.size(), Status::OK());
  ParallelFor(shards.size(), 2, [&](size_t s) {
    StoreOptions per_shard = shard_opts;
    // Decorrelate companion draws across shards: a shared seed would make
    // every shard pick the "same" pseudo-random rows of its partition.
    per_shard.sample_seed += static_cast<uint64_t>(s) << 20;
    auto store = SourceStore::Build(*shards[s], per_shard);
    if (!store.ok()) {
      statuses[s] = store.status();
      return;
    }
    built[s] = *store;
    // Seal-time metadata: the zone map records exactly which codes this
    // shard's rows touch, while the shard table is still in hand.
    zone_maps[s] = std::make_shared<const ZoneMap>(ZoneMap::Build(*shards[s]));
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return FromShards(std::move(built), opts.scheme, std::move(zone_maps),
                    opts.partition_attr);
}

bool ShardedStore::Prunable(size_t s, const CountingQuery& q,
                            AttrId* attr) const {
  if (!prune_ || zone_maps_[s] == nullptr) return false;
  return !zone_maps_[s]->MightMatch(q, attr);
}

Result<QueryEstimate> ShardedStore::Answer(
    const CountingQuery& q, std::vector<RouteDecision>* per_shard) const {
  if (per_shard != nullptr) {
    per_shard->assign(shards_.size(), RouteDecision{});
  }
  QueryEstimate merged;
  for (size_t s = 0; s < shards_.size(); ++s) {
    // A shard whose zone map rules the query out would answer an exact
    // {0, 0} (see storage/zone_map.h) — skip it; the merge is unchanged.
    AttrId pruned_attr = 0;
    if (Prunable(s, q, &pruned_attr)) {
      if (per_shard != nullptr) {
        (*per_shard)[s].pruned = true;
        (*per_shard)[s].pruned_attr = pruned_attr;
      }
      continue;
    }
    ASSIGN_OR_RETURN(
        QueryEstimate est,
        engines_[s]->Answer(
            q, per_shard != nullptr ? &(*per_shard)[s] : nullptr));
    MergeInto(&merged, est);
  }
  return merged;
}

Result<QueryResult> ShardedStore::Answer(
    const AggregateQuery& q, std::vector<RouteDecision>* per_shard) const {
  if (q.kind != AggregateKind::kCount && q.kind != AggregateKind::kSum &&
      q.kind != AggregateKind::kAvg) {
    return Status::NotSupported(
        std::string("aggregate kind ") + AggregateKindName(q.kind) +
        " is derived at the engine facade, not merged across shards");
  }
  if (per_shard != nullptr) {
    per_shard->assign(shards_.size(), RouteDecision{});
  }
  // Disjoint row partitions with independently fit models: the estimates,
  // BOTH moment legs, and the SUM/COUNT covariance are all additive (a
  // pruned shard contributes the exact zeros it would have answered).
  QueryResult merged;
  merged.has_moments = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    AttrId pruned_attr = 0;
    if (Prunable(s, q.where, &pruned_attr)) {
      if (per_shard != nullptr) {
        (*per_shard)[s].pruned = true;
        (*per_shard)[s].pruned_attr = pruned_attr;
      }
      continue;
    }
    ASSIGN_OR_RETURN(
        QueryResult part,
        engines_[s]->Answer(
            q, per_shard != nullptr ? &(*per_shard)[s] : nullptr));
    MergeInto(&merged.estimate, part.estimate);
    MergeInto(&merged.sum, part.sum);
    MergeInto(&merged.count, part.count);
    merged.sum_count_cov += part.sum_count_cov;
  }
  if (q.kind == AggregateKind::kAvg) {
    // ONE delta method over the MERGED moments — the covariance term the
    // per-shard results surfaced stays in the ratio variance, so the
    // cross-shard AVG matches the unsharded formula instead of the old
    // covariance-free approximation (docs/ESTIMATORS.md).
    merged.estimate = QueryEstimate{};
    if (merged.count.expectation > 0.0) {
      const double c = merged.count.expectation;
      const double r = merged.sum.expectation / c;
      merged.estimate.expectation = r;
      merged.estimate.variance = std::max(
          0.0, (merged.sum.variance - 2.0 * r * merged.sum_count_cov +
                r * r * merged.count.variance) /
                   (c * c));
    }
  }
  return merged;
}

Result<std::vector<QueryEstimate>> ShardedStore::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base) const {
  if (a >= num_attributes()) {
    return Status::OutOfRange("group-by attribute out of range");
  }
  // Pre-size to the group-by width so a shard pruned on the base filter
  // can be skipped: an impossible base makes every per-value cell of that
  // shard an exact {0, 0}.
  std::vector<QueryEstimate> merged(
      shards_.front()->entry(0).summary->registry().domain_size(a));
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (Prunable(s, base, nullptr)) continue;
    ASSIGN_OR_RETURN(std::vector<QueryEstimate> part,
                     engines_[s]->AnswerGroupByAttribute(a, base));
    if (merged.size() != part.size()) {
      return Status::Internal("shards disagree on group-by width");
    }
    for (size_t v = 0; v < part.size(); ++v) MergeInto(&merged[v], part[v]);
  }
  return merged;
}

Result<std::map<std::vector<Code>, QueryEstimate>> ShardedStore::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys,
    const CountingQuery& base) const {
  std::map<std::vector<Code>, QueryEstimate> merged;
  // Every requested key gets a slot up front, so the result keeps its
  // shape even when pruning skips every shard (malformed keys still fail,
  // exactly as the per-shard answerers would make them).
  for (const auto& key : keys) {
    if (key.size() != attrs.size()) {
      return Status::InvalidArgument("group-by key arity mismatch");
    }
    merged[key];
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (Prunable(s, base, nullptr)) continue;
    ASSIGN_OR_RETURN(auto part, engines_[s]->AnswerGroupBy(attrs, keys, base));
    for (const auto& [key, est] : part) MergeInto(&merged[key], est);
  }
  return merged;
}

Result<std::vector<QueryEstimate>> ShardedStore::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<std::vector<RouteDecision>>* per_shard) const {
  const size_t nq = qs.size();
  const size_t ns = shards_.size();
  // The full shards x queries grid fans out flat: cell (i, s) is shard s
  // answering query i into its own slot, so the fan-out saturates the pool
  // even when one of the two dimensions is small.
  std::vector<QueryEstimate> cells(nq * ns);
  std::vector<RouteDecision> cell_decisions(
      per_shard != nullptr ? nq * ns : 0);
  std::vector<Status> statuses(nq * ns, Status::OK());
  ParallelFor(nq * ns, 2, [&](size_t flat) {
    const size_t i = flat / ns;
    const size_t s = flat % ns;
    // Pruned cells keep their default-zero estimate — the exact value the
    // shard would have answered — so the serial merge below is unchanged.
    AttrId pruned_attr = 0;
    if (Prunable(s, qs[i], &pruned_attr)) {
      if (per_shard != nullptr) {
        cell_decisions[flat].pruned = true;
        cell_decisions[flat].pruned_attr = pruned_attr;
      }
      return;
    }
    auto est = engines_[s]->Answer(
        qs[i], per_shard != nullptr ? &cell_decisions[flat] : nullptr);
    if (!est.ok()) {
      statuses[flat] = est.status();
      return;
    }
    cells[flat] = *est;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  // Serial merge in shard order: bitwise the same sum the one-query path
  // computes.
  std::vector<QueryEstimate> out(nq);
  for (size_t i = 0; i < nq; ++i) {
    for (size_t s = 0; s < ns; ++s) MergeInto(&out[i], cells[i * ns + s]);
  }
  if (per_shard != nullptr) {
    per_shard->assign(nq, std::vector<RouteDecision>(ns));
    for (size_t i = 0; i < nq; ++i) {
      for (size_t s = 0; s < ns; ++s) {
        (*per_shard)[i][s] = cell_decisions[i * ns + s];
      }
    }
  }
  return out;
}

Result<ShardedStore::Manifest> ShardedStore::ReadManifest(
    const std::string& dir, Env* env, bool verify_checksums) {
  const std::string path = (fs::path(dir) / "MANIFEST").string();
  bool had_footer = false;
  ASSIGN_OR_RETURN(
      std::string payload,
      ReadChecksummedFile(env, path, verify_checksums, &had_footer));
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token)) {
    return Status::Corruption("bad store manifest header in " + dir);
  }
  bool v4 = false;
  if (token == kManifestV4) {
    std::string kind;
    if (!(in >> kind) || kind != "sharded") {
      return Status::InvalidArgument("not a sharded store manifest in " +
                                     dir);
    }
    if (!had_footer) {
      return Status::Corruption("missing checksum footer in " + path);
    }
    v4 = true;
  } else if (token != kManifestV3) {
    return Status::Corruption("not a sharded (v3/v4) store manifest in " +
                              dir);
  } else if (!had_footer) {
    std::fprintf(stderr,
                 "entropydb: warning: %s has no checksum footer "
                 "(legacy format, loaded unverified)\n",
                 path.c_str());
  }
  Manifest m;
  std::string scheme_token;
  if (!(in >> token >> scheme_token) || token != "scheme") {
    return Status::Corruption("bad scheme record in " + dir);
  }
  ASSIGN_OR_RETURN(PartitionSpec spec, ParsePartitionSpec(scheme_token));
  m.scheme = spec.scheme;
  m.partition_attr = spec.attr;
  if (v4) {
    if (!(in >> token >> m.wal_sealed) || token != "wal_sealed") {
      return Status::Corruption("bad wal_sealed record in " + dir);
    }
  }
  size_t ns = 0;
  if (!(in >> token >> ns) || token != "shards" || ns == 0) {
    return Status::Corruption("bad shards record in " + dir);
  }
  m.shard_dirs.resize(ns);
  for (size_t s = 0; s < ns; ++s) {
    if (!(in >> token >> m.shard_dirs[s]) || token != "shard") {
      return Status::Corruption("bad shard record in " + dir);
    }
  }
  // Optional trailing sections, each absent in older manifests: zone
  // maps (pre-pruning stores never prune), the compaction generation,
  // and the per-shard row counts the compaction planner triggers on.
  while (in >> token) {
    if (token == "zonemaps") {
      size_t nz = 0;
      if (!m.zonemap_dirs.empty() || !(in >> nz) || nz > ns) {
        return Status::Corruption("bad zonemaps record in " + dir);
      }
      m.zonemap_dirs.resize(nz);
      for (size_t z = 0; z < nz; ++z) {
        if (!(in >> token >> m.zonemap_dirs[z]) || token != "zonemap") {
          return Status::Corruption("bad zonemap record in " + dir);
        }
      }
    } else if (token == "gen") {
      if (!(in >> m.compaction_gen)) {
        return Status::Corruption("bad gen record in " + dir);
      }
    } else if (token == "shardrows") {
      size_t nr = 0;
      if (!m.shard_rows.empty() || !(in >> nr) || nr != ns) {
        return Status::Corruption("bad shardrows record in " + dir);
      }
      m.shard_rows.resize(nr);
      for (size_t r = 0; r < nr; ++r) {
        if (!(in >> token >> m.shard_rows[r]) || token != "shardrow") {
          return Status::Corruption("bad shardrow record in " + dir);
        }
      }
    } else {
      return Status::Corruption("unknown manifest record '" + token +
                                "' in " + dir);
    }
  }
  return m;
}

Status ShardedStore::WriteManifest(const std::string& dir, const Manifest& m,
                                   Env* env) {
  // Stage under a fixed tmp name (a stale one from a crashed flip is
  // simply overwritten — Load never reads it), sync, then rename over the
  // live MANIFEST and sync the directory: the shard list and the
  // wal_sealed cursor flip together.
  const std::string tmp = (fs::path(dir) / "MANIFEST.tmp").string();
  const std::string final_path = (fs::path(dir) / "MANIFEST").string();
  RETURN_NOT_OK(WriteChecksummedFile(env, tmp, ManifestPayload(m)));
  RETURN_NOT_OK(env->Rename(tmp, final_path));
  return env->SyncDir(dir);
}

Status ShardedStore::Save(const std::string& dir, Env* env) const {
  // Stage the WHOLE tree (shards + manifest), publish once: re-saving over
  // an existing store can never expose a manifest pointing at a mix of new
  // and stale shard data. Note Save persists the loaded sources only —
  // it writes no ingest journal (wal_sealed 0); recover any unsealed WAL
  // records (engine/ingest.h) before re-saving a store wholesale.
  const std::string stage = StagingDirFor(dir);
  Status s = [&]() -> Status {
    RETURN_NOT_OK(env->CreateDirs(stage));
    // Shard subtrees touch disjoint paths, so they fan out; inside the
    // stage nothing is being published, so shards skip their own staging.
    std::vector<Status> statuses(shards_.size(), Status::OK());
    ParallelFor(shards_.size(), 2, [&](size_t i) {
      const std::string shard_dir =
          (fs::path(stage) / ("shard_" + std::to_string(i))).string();
      statuses[i] = shards_[i]->SaveContents(shard_dir, env);
      if (statuses[i].ok() && zone_maps_[i] != nullptr) {
        statuses[i] = zone_maps_[i]->Save(
            env, (fs::path(shard_dir) / kZoneMapFileName).string());
      }
    });
    for (const Status& st : statuses) {
      if (!st.ok()) return st;
    }
    Manifest m;
    m.scheme = scheme_;
    m.partition_attr = partition_attr_;
    for (size_t i = 0; i < shards_.size(); ++i) {
      m.shard_dirs.push_back("shard_" + std::to_string(i));
      m.shard_rows.push_back(static_cast<uint64_t>(shards_[i]->n()));
      if (zone_maps_[i] != nullptr) {
        m.zonemap_dirs.push_back(m.shard_dirs.back());
      }
    }
    RETURN_NOT_OK(WriteChecksummedFile(
        env, (fs::path(stage) / "MANIFEST").string(), ManifestPayload(m)));
    return env->SyncDir(stage);
  }();
  if (s.ok()) s = env->PublishDir(stage, dir);
  if (!s.ok()) env->RemoveAll(stage).ok();  // best-effort cleanup
  return s;
}

bool ShardedStore::IsShardedDir(const std::string& dir, Env* env) {
  std::string contents;
  if (!env->ReadFile((fs::path(dir) / "MANIFEST").string(), &contents)
           .ok()) {
    return false;
  }
  std::istringstream in(contents);
  std::string token;
  if (!(in >> token)) return false;
  if (token == kManifestV3) return true;
  std::string kind;
  return token == kManifestV4 && (in >> kind) && kind == "sharded";
}

Result<std::shared_ptr<ShardedStore>> ShardedStore::Load(
    const std::string& dir, SummaryOptions opts, Env* env) {
  RemoveStaleStagingDirs(env, dir);
  ASSIGN_OR_RETURN(Manifest m,
                   ReadManifest(dir, env, opts.verify_checksums));
  // GC every `shard_*` entry the manifest does not reference: a crashed
  // ingest seal or compaction strands half-built shards (and their
  // `shard_*.tmp-*` staging siblings), a crash between a compaction's
  // manifest flip and its cleanup leaves the replaced ones, and a crashed
  // WriteManifest leaks its pre-rename tmp file. Orphan rows are
  // journal-backed, so removal never loses data. Shares SweepStaleEntries
  // with the version GC (storage/version_set.cc) so the two staleness
  // rules can't drift.
  SweepStaleEntries(env, dir, {"shard_", "MANIFEST.tmp"},
                    /*keep=*/m.shard_dirs);
  const size_t ns = m.shard_dirs.size();
  // Shard loads are independent (each is a full store load, itself
  // parallel inside), so fan out across shards too.
  std::vector<std::shared_ptr<SourceStore>> shards(ns);
  std::vector<std::shared_ptr<const ZoneMap>> zone_maps(ns);
  std::vector<Status> statuses(ns, Status::OK());
  ParallelFor(ns, 2, [&](size_t s) {
    auto loaded = SourceStore::Load((fs::path(dir) / m.shard_dirs[s]).string(),
                                    opts, env);
    if (!loaded.ok()) {
      statuses[s] = loaded.status();
      return;
    }
    shards[s] = *loaded;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  // Zone maps the manifest lists: a corrupt one is a typed failure (a
  // wrong zone map would prune wrongly — silently wrong answers), but a
  // MISSING one merely degrades that shard to full fan-out, with a
  // warning. Deleting a zone map is a legal manual repair.
  for (const std::string& zdir : m.zonemap_dirs) {
    size_t s = ns;
    for (size_t i = 0; i < ns; ++i) {
      if (m.shard_dirs[i] == zdir) {
        s = i;
        break;
      }
    }
    if (s == ns) {
      return Status::Corruption("manifest lists a zone map for unknown shard " +
                                zdir + " in " + dir);
    }
    const std::string path =
        (fs::path(dir) / zdir / kZoneMapFileName).string();
    if (!env->FileExists(path)) {
      std::fprintf(stderr,
                   "entropydb: warning: zone map %s is missing; shard "
                   "degrades to full fan-out\n",
                   path.c_str());
      continue;
    }
    ASSIGN_OR_RETURN(ZoneMap zm, ZoneMap::Load(env, path));
    zone_maps[s] = std::make_shared<const ZoneMap>(std::move(zm));
  }
  auto store =
      FromShards(std::move(shards), m.scheme, std::move(zone_maps),
                 m.partition_attr);
  if (!store.ok()) {
    return Status::Corruption("inconsistent sharded store in " + dir + ": " +
                              store.status().message());
  }
  (*store)->compaction_gen_ = m.compaction_gen;
  return store;
}

}  // namespace entropydb
