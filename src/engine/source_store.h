#ifndef ENTROPYDB_ENGINE_SOURCE_STORE_H_
#define ENTROPYDB_ENGINE_SOURCE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "engine/estimate_source.h"
#include "maxent/budget_advisor.h"
#include "maxent/summary.h"
#include "sampling/sample.h"
#include "stats/pair_selector.h"
#include "stats/selector.h"
#include "storage/table.h"

namespace entropydb {

/// Build-time knobs for a multi-source store.
struct StoreOptions {
  /// Number of summaries K; each models one of the top-K ranked attribute
  /// pairs (attribute-cover order, the paper's recommended strategy).
  /// Capped at the number of available pairs.
  size_t num_summaries = 3;
  /// Total 2-D statistic budget B, split evenly: each summary's pair gets
  /// B / K statistics.
  size_t total_budget = 1200;
  /// When true, BudgetAdvisor::Advise decides BOTH how many pairs to model
  /// (K = best candidate's Ba) and which ones, overriding `num_summaries`.
  /// Costs several trial summary builds (Sec 4.3 breadth-vs-depth search).
  bool use_budget_advisor = false;
  /// 2-D statistic selection heuristic per pair.
  SelectionHeuristic heuristic = SelectionHeuristic::kComposite;
  /// Attributes to exclude from pairing (e.g. near-uniform ones).
  std::vector<AttrId> exclude;
  /// When non-empty, model exactly these pairs (one summary each) and skip
  /// pair ranking and the advisor entirely. This is how a sharded build
  /// (engine/sharded_store.h) ranks pairs ONCE on the full relation and
  /// then builds every shard on the same pairs — per-shard ranking would
  /// both waste an O(rows x m^2) scan per shard and let shards disagree on
  /// which correlations the store models.
  std::vector<ScoredPair> forced_pairs;
  /// Solver / polynomial knobs, shared by every summary build.
  SummaryOptions summary;

  // -- Sample companions (the paper's Sec 6.2 baselines, servable) -------
  /// Number of stratified samples to build alongside the summaries, one per
  /// top-ranked pair in the same rank order the summaries use (capped at
  /// the number of chosen pairs). 0 keeps the store summary-only.
  size_t num_stratified_samples = 0;
  /// Also build one uniform Bernoulli sample over the whole relation.
  bool uniform_sample = false;
  /// Sampling fraction shared by every sample companion (paper: 1%).
  double sample_fraction = 0.01;
  /// RNG seed for the sample draws (deterministic builds).
  uint64_t sample_seed = 1031;
  /// Build a row-group index (sampling/sample_index.h) for every sample
  /// companion, so selective queries touch matching row groups instead of
  /// scanning the whole sample. Indexed and unindexed evaluation are
  /// bitwise identical — this knob trades index memory/build time for
  /// route-time latency only. Indexes are built in parallel and persisted
  /// in the .eds v2 files Save writes.
  bool sample_index = true;
};

/// One summary of the store plus the attribute pairs it models — the
/// routing metadata QueryRouter keys on.
struct StoreEntry {
  std::shared_ptr<EntropySummary> summary;
  std::vector<ScoredPair> pairs;
};

/// One sample of the store plus its stratification pairs (empty for a
/// uniform sample) — the same routing metadata shape as StoreEntry.
struct SampleEntry {
  std::shared_ptr<const WeightedSample> sample;
  std::vector<ScoredPair> pairs;
};

/// \brief Owns the heterogeneous estimate sources of one relation: K
/// EntropySummaries (each modeling the 2-D statistics of one
/// highly-correlated attribute pair) PLUS any number of weighted sample
/// companions (stratified / uniform, Sec 6.2's baselines). A router can
/// then answer every query from the source that covers it best — summary
/// or sample, whichever expects the lower variance (docs/ESTIMATORS.md).
///
/// Build ranks pairs by bias-corrected Cramér's V, picks the top K by
/// attribute cover (or lets BudgetAdvisor choose the breadth-vs-depth
/// split), and solves the K summaries IN PARALLEL on the shared thread
/// pool — summary builds are independent, and nested solver fan-outs
/// degrade inline on worker threads (see common/thread_pool.h). Sample
/// companions are drawn after the pair ranking, stratified on the same
/// top-ranked pairs.
///
/// Sample companions carry a row-group index (sampling/sample_index.h,
/// StoreOptions::sample_index) built in parallel at Build time; Save
/// persists it in the .eds v2 files, Load restores it (or rebuilds it for
/// PR 3-era v1 .eds files) inside the parallel load fan-out.
///
/// Save/Load persist the whole store as a directory (one MANIFEST plus one
/// .edb file per summary and one .eds file per sample), restoring without
/// re-solving or re-sampling; loads are parallel. MANIFEST v2 adds the
/// samples section; v1 (summary-only, PR 2-era) directories load
/// unchanged. All sources share the relation's attribute schema; queries
/// are position-compatible across the store.
class SourceStore {
 public:
  static Result<std::shared_ptr<SourceStore>> Build(const Table& table,
                                                    StoreOptions opts = {});

  /// The pair-selection step of Build, exposed so a sharded build
  /// (engine/sharded_store.h) can run it ONCE on the full relation and
  /// force the result into every shard: forced pairs win, else the
  /// advisor (when enabled), else rank-and-choose by attribute cover.
  /// Validates every chosen pair against the table's arity.
  static Result<std::vector<ScoredPair>> ResolvePairs(
      const Table& table, const StoreOptions& opts);

  /// Number of summary entries.
  size_t size() const { return entries_.size(); }
  const StoreEntry& entry(size_t k) const { return entries_[k]; }
  const EntropySummary& summary(size_t k) const {
    return *entries_[k].summary;
  }
  std::shared_ptr<EntropySummary> summary_ptr(size_t k) const {
    return entries_[k].summary;
  }

  /// Number of sample companions (0 for a summary-only store).
  size_t num_samples() const { return samples_.size(); }
  const SampleEntry& sample_entry(size_t s) const { return samples_[s]; }
  /// The servable EstimateSource over sample `s`.
  const SampleSource& sample_source(size_t s) const {
    return *sample_sources_[s];
  }

  /// Index of the fallback summary for queries no summary covers: the
  /// entry whose pairs span the most attributes, ties broken toward the
  /// most correlated (lowest index).
  size_t widest() const { return widest_; }

  // Schema accessors, identical across sources (validated on Build/Load).
  const std::vector<std::string>& attr_names() const {
    return entries_.front().summary->attr_names();
  }
  const std::vector<Domain>& domains() const {
    return entries_.front().summary->domains();
  }
  bool has_domains() const {
    return entries_.front().summary->has_domains();
  }
  double n() const { return entries_.front().summary->n(); }
  size_t num_attributes() const {
    return entries_.front().summary->num_attributes();
  }

  /// Atomically persists the store at directory `dir`: the contents
  /// (`MANIFEST` v4 plus `summary_<k>.edb` per summary and
  /// `sample_<s>.eds` per sample, every file checksummed and synced) are
  /// staged into a `<dir>.tmp-<nonce>` sibling and published at `dir` in
  /// one rename — a crash at any point leaves `dir` as exactly the old
  /// store or the new one, never a mix.
  Status Save(const std::string& dir, Env* env = Env::Default()) const;
  /// The non-atomic half of Save: writes and syncs the store's files
  /// directly into `dir` (created if missing) with no staging. Exposed so
  /// a sharded save can stage its WHOLE tree once and publish once;
  /// everyone else wants Save.
  Status SaveContents(const std::string& dir, Env* env) const;
  /// Restores a saved store without re-solving (sources load in
  /// parallel). Accepts MANIFEST v4 (checksummed era — footer required),
  /// v2, and PR 2-era v1 (summary-only) directories; legacy manifests
  /// load with a stderr warning. Garbage-collects stale staging
  /// directories a crashed save left next to `dir`.
  static Result<std::shared_ptr<SourceStore>> Load(const std::string& dir,
                                                   SummaryOptions opts = {},
                                                   Env* env = Env::Default());

  /// Assembles a summary-only store from already-built summaries (also
  /// handy for tests). Entries must be non-empty and agree on the
  /// attribute schema.
  static Result<std::shared_ptr<SourceStore>> FromEntries(
      std::vector<StoreEntry> entries);

  /// Assembles a store from already-built summaries AND samples (the path
  /// Load uses). At least one summary is required — the router's fallback
  /// is always a summary; samples must share the summaries' arity.
  static Result<std::shared_ptr<SourceStore>> FromParts(
      std::vector<StoreEntry> entries, std::vector<SampleEntry> samples);

 private:
  SourceStore(std::vector<StoreEntry> entries,
              std::vector<SampleEntry> samples);

  std::vector<StoreEntry> entries_;
  std::vector<SampleEntry> samples_;
  std::vector<std::shared_ptr<SampleSource>> sample_sources_;
  size_t widest_ = 0;
};

/// PR 2-era name for the summary-only store; SourceStore supersedes it and
/// loads those directories unchanged.
using SummaryStore = SourceStore;

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_SOURCE_STORE_H_
