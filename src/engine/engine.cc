#include "engine/engine.h"

#include <filesystem>

#include "common/thread_pool.h"
#include "engine/sharded_store.h"
#include "maxent/join_fusion.h"
#include "maxent/quantile.h"
#include "storage/version_set.h"

namespace entropydb {

EntropyEngine::EntropyEngine(std::shared_ptr<EntropySummary> summary,
                             std::shared_ptr<SourceStore> store,
                             std::shared_ptr<ShardedStore> sharded)
    : primary_(std::move(summary)),
      store_(std::move(store)),
      sharded_(std::move(sharded)) {
  if (store_ != nullptr) {
    primary_ = store_->summary_ptr(store_->widest());
    router_ = std::make_unique<QueryRouter>(store_);
  } else if (sharded_ != nullptr) {
    // Schema accessors read the first shard's widest summary; answering
    // never touches primary_ on the sharded paths.
    const SourceStore& first = sharded_->shard(0);
    primary_ = first.summary_ptr(first.widest());
  }
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromSummary(
    std::shared_ptr<EntropySummary> summary) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(std::move(summary), nullptr, nullptr));
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromStore(
    std::shared_ptr<SourceStore> store) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(nullptr, std::move(store), nullptr));
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromSharded(
    std::shared_ptr<ShardedStore> sharded) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(nullptr, nullptr, std::move(sharded)));
}

Result<std::shared_ptr<EntropyEngine>> EntropyEngine::Open(
    const std::string& path, SummaryOptions opts, Env* env) {
  if (std::filesystem::is_directory(path)) {
    if (VersionSet::IsVersionedRoot(path, env)) {
      // Resolve the atomic CURRENT pointer to the live version's store
      // directory; opening the root after a publish sees the new version,
      // while an engine already opened on the previous one keeps serving
      // its (immutable) files.
      VersionSet::Options vopts;
      vopts.verify_checksums = opts.verify_checksums;
      ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> versions,
                       VersionSet::Open(path, env, vopts));
      if (versions->current() == 0) {
        return Status::FailedPrecondition(
            "versioned root has no published version: " + path);
      }
      return Open(versions->CurrentDir(), opts, env);
    }
    if (ShardedStore::IsShardedDir(path, env)) {
      ASSIGN_OR_RETURN(std::shared_ptr<ShardedStore> sharded,
                       ShardedStore::Load(path, opts, env));
      return FromSharded(std::move(sharded));
    }
    ASSIGN_OR_RETURN(std::shared_ptr<SourceStore> store,
                     SourceStore::Load(path, opts, env));
    return FromStore(std::move(store));
  }
  ASSIGN_OR_RETURN(std::shared_ptr<EntropySummary> summary,
                   EntropySummary::Load(path, opts, env));
  return FromSummary(std::move(summary));
}

size_t EntropyEngine::num_shards() const {
  return sharded_ != nullptr ? sharded_->num_shards() : 1;
}

size_t EntropyEngine::num_summaries() const {
  if (sharded_ != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      total += sharded_->shard(s).size();
    }
    return total;
  }
  return store_ ? store_->size() : 1;
}

size_t EntropyEngine::num_samples() const {
  if (sharded_ != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      total += sharded_->shard(s).num_samples();
    }
    return total;
  }
  return store_ ? store_->num_samples() : 0;
}

double EntropyEngine::n() const {
  return sharded_ != nullptr ? sharded_->n() : primary_->n();
}

EngineStats EntropyEngine::stats() const {
  EngineStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  return s;
}

Result<QueryEstimate> EntropyEngine::Answer(const CountingQuery& q,
                                            RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    // Per-shard routing decisions live on ShardedStore::Answer; the
    // facade-level decision carries the merged variance plus the
    // pruned/scanned shard counters.
    if (decision == nullptr) return sharded_->Answer(q);
    *decision = RouteDecision{};
    std::vector<RouteDecision> per_shard;
    ASSIGN_OR_RETURN(QueryEstimate est, sharded_->Answer(q, &per_shard));
    decision->expected_variance = est.variance;
    for (const RouteDecision& d : per_shard) {
      ++(d.pruned ? decision->shards_pruned : decision->shards_scanned);
    }
    return est;
  }
  if (router_ != nullptr) return router_->Answer(q, decision);
  if (decision != nullptr) *decision = RouteDecision{};
  auto est = primary_->Answer(q);
  if (est.ok() && decision != nullptr) {
    decision->expected_variance = est->variance;
    decision->summary_variance = est->variance;
  }
  return est;
}

Result<QueryResult> EntropyEngine::Answer(const AggregateQuery& q,
                                          RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (q.kind) {
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      if (sharded_ != nullptr) {
        RouteDecision dec;
        std::vector<RouteDecision> per_shard;
        ASSIGN_OR_RETURN(QueryResult out, sharded_->Answer(q, &per_shard));
        dec.expected_variance = out.estimate.variance;
        for (const RouteDecision& d : per_shard) {
          ++(d.pruned ? dec.shards_pruned : dec.shards_scanned);
        }
        out.route = dec;
        if (decision != nullptr) *decision = dec;
        return out;
      }
      if (router_ != nullptr) return router_->Answer(q, decision);
      ASSIGN_OR_RETURN(QueryResult out, primary_->Answer(q));
      if (decision != nullptr) *decision = out.route;
      return out;
    }
    case AggregateKind::kQuantile: {
      RouteDecision dec;
      ASSIGN_OR_RETURN(std::vector<QueryEstimate> cells,
                       GroupByMarginal(q.agg_attr, q.where, &dec));
      ASSIGN_OR_RETURN(QueryResult out,
                       QuantileFromMarginal(cells, q.weights, q.q, n()));
      dec.expected_variance = out.estimate.variance;
      dec.summary_variance = out.estimate.variance;
      out.route = dec;
      if (decision != nullptr) *decision = dec;
      return out;
    }
    case AggregateKind::kTopK: {
      RouteDecision dec;
      ASSIGN_OR_RETURN(std::vector<QueryEstimate> cells,
                       GroupByMarginal(q.agg_attr, q.where, &dec));
      ASSIGN_OR_RETURN(QueryResult out, TopKFromMarginal(cells, q.k));
      dec.expected_variance = out.estimate.variance;
      dec.summary_variance = out.estimate.variance;
      out.route = dec;
      if (decision != nullptr) *decision = dec;
      return out;
    }
    case AggregateKind::kJoinCount:
    case AggregateKind::kJoinSum:
      return Status::InvalidArgument(
          "join queries fuse two engines — use AnswerJoin with the "
          "right-side engine");
  }
  return Status::Internal("unhandled aggregate kind");
}

Result<QueryResult> EntropyEngine::AnswerJoin(const AggregateQuery& q,
                                              const EntropyEngine& right,
                                              RouteDecision* decision) const {
  if (q.kind != AggregateKind::kJoinCount &&
      q.kind != AggregateKind::kJoinSum) {
    return Status::InvalidArgument(
        std::string("AnswerJoin answers join kinds only, not ") +
        AggregateKindName(q.kind));
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (q.join_attr >= num_attributes() ||
      q.right_join_attr >= right.num_attributes()) {
    return Status::OutOfRange("join attribute out of range");
  }
  RouteDecision dec;
  // Each side contributes its filtered join-attribute marginal from its
  // own routed model (sharded sides merge additively underneath); the
  // fusion itself is pure marginal algebra.
  ASSIGN_OR_RETURN(std::vector<QueryEstimate> left_cells,
                   GroupByMarginal(q.join_attr, q.where, &dec));
  ASSIGN_OR_RETURN(
      std::vector<QueryEstimate> right_cells,
      right.GroupByMarginal(q.right_join_attr, q.right_where, nullptr));
  JoinSideMarginal right_marg;
  right_marg.n = right.n();
  right_marg.mass.reserve(right_cells.size());
  for (const QueryEstimate& c : right_cells) {
    right_marg.mass.push_back(c.expectation);
  }

  QueryResult out;
  if (q.kind == AggregateKind::kJoinCount) {
    JoinSideMarginal left_marg;
    left_marg.n = n();
    left_marg.mass.reserve(left_cells.size());
    for (const QueryEstimate& c : left_cells) {
      left_marg.mass.push_back(c.expectation);
    }
    ASSIGN_OR_RETURN(out, FuseJoinCount(left_marg, right_marg));
  } else {
    if (q.agg_attr >= num_attributes()) {
      return Status::OutOfRange("aggregate attribute out of range");
    }
    const size_t width = primary_->registry().domain_size(q.agg_attr);
    if (q.weights.size() != width) {
      return Status::InvalidArgument(
          "weight vector must have one entry per value of the attribute");
    }
    // The left (join-code, value) grid: one point group-by over the two
    // attributes, every code combination as a key. s_j = sum_v w_v c_jv
    // then feeds the fusion.
    const std::vector<AttrId> attrs = {q.join_attr, q.agg_attr};
    std::vector<std::vector<Code>> keys;
    keys.reserve(left_cells.size() * width);
    for (Code j = 0; j < left_cells.size(); ++j) {
      for (Code v = 0; v < width; ++v) {
        keys.push_back({j, v});
      }
    }
    Result<std::map<std::vector<Code>, QueryEstimate>> grid_map =
        sharded_ != nullptr
            ? sharded_->AnswerGroupBy(attrs, keys, q.where)
            : RouteFor(q.where, attrs, nullptr)
                  .AnswerGroupBy(attrs, keys, q.where);
    if (!grid_map.ok()) return grid_map.status();
    std::vector<std::vector<double>> grid(
        left_cells.size(), std::vector<double>(width, 0.0));
    for (const auto& [key, est] : *grid_map) {
      grid[key[0]][key[1]] = est.expectation;
    }
    ASSIGN_OR_RETURN(out, FuseJoinSum(n(), grid, q.weights, right_marg));
  }
  dec.expected_variance = out.estimate.variance;
  dec.summary_variance = out.estimate.variance;
  out.route = dec;
  if (decision != nullptr) *decision = dec;
  return out;
}

Result<std::vector<QueryEstimate>> EntropyEngine::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<RouteDecision>* decisions) const {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(qs.size(), std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    ASSIGN_OR_RETURN(std::vector<QueryEstimate> out, sharded_->AnswerAll(qs));
    if (decisions != nullptr) {
      decisions->assign(qs.size(), RouteDecision{});
      for (size_t i = 0; i < out.size(); ++i) {
        (*decisions)[i].expected_variance = out[i].variance;
      }
    }
    return out;
  }
  if (router_ != nullptr) return router_->AnswerAll(qs, decisions);
  if (decisions != nullptr) decisions->assign(qs.size(), RouteDecision{});
  std::vector<QueryEstimate> out(qs.size());
  std::vector<Status> statuses(qs.size(), Status::OK());
  ParallelFor(qs.size(), 2, [&](size_t i) {
    auto est = primary_->Answer(qs[i]);
    if (!est.ok()) {
      statuses[i] = est.status();
      return;
    }
    out[i] = *est;
    if (decisions != nullptr) (*decisions)[i].expected_variance = est->variance;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

const EntropySummary& EntropyEngine::RouteFor(
    const CountingQuery& q, const std::vector<AttrId>& extra_attrs,
    RouteDecision* decision) const {
  if (decision != nullptr) *decision = RouteDecision{};
  if (router_ == nullptr || q.num_attributes() != store_->num_attributes()) {
    // Arity errors surface from the summary's own validation.
    return *primary_;
  }
  return store_->summary(router_->RouteEntry(q, extra_attrs, decision));
}

Result<std::vector<QueryEstimate>> EntropyEngine::GroupByMarginal(
    AttrId a, const CountingQuery& base, RouteDecision* decision) const {
  if (sharded_ != nullptr) {
    if (decision != nullptr) *decision = RouteDecision{};
    return sharded_->AnswerGroupByAttribute(a, base);
  }
  return RouteFor(base, {a}, decision).AnswerGroupByAttribute(a, base);
}

Result<std::vector<QueryEstimate>> EntropyEngine::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base, RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  return GroupByMarginal(a, base, decision);
}

Result<std::map<std::vector<Code>, QueryEstimate>> EntropyEngine::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys, const CountingQuery& base,
    RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    if (decision != nullptr) *decision = RouteDecision{};
    return sharded_->AnswerGroupBy(attrs, keys, base);
  }
  return RouteFor(base, attrs, decision).AnswerGroupBy(attrs, keys, base);
}

}  // namespace entropydb
