#include "engine/engine.h"

#include <filesystem>

#include "common/thread_pool.h"
#include "engine/sharded_store.h"
#include "storage/version_set.h"

namespace entropydb {

EntropyEngine::EntropyEngine(std::shared_ptr<EntropySummary> summary,
                             std::shared_ptr<SourceStore> store,
                             std::shared_ptr<ShardedStore> sharded)
    : primary_(std::move(summary)),
      store_(std::move(store)),
      sharded_(std::move(sharded)) {
  if (store_ != nullptr) {
    primary_ = store_->summary_ptr(store_->widest());
    router_ = std::make_unique<QueryRouter>(store_);
  } else if (sharded_ != nullptr) {
    // Schema accessors read the first shard's widest summary; answering
    // never touches primary_ on the sharded paths.
    const SourceStore& first = sharded_->shard(0);
    primary_ = first.summary_ptr(first.widest());
  }
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromSummary(
    std::shared_ptr<EntropySummary> summary) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(std::move(summary), nullptr, nullptr));
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromStore(
    std::shared_ptr<SourceStore> store) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(nullptr, std::move(store), nullptr));
}

std::shared_ptr<EntropyEngine> EntropyEngine::FromSharded(
    std::shared_ptr<ShardedStore> sharded) {
  return std::shared_ptr<EntropyEngine>(
      new EntropyEngine(nullptr, nullptr, std::move(sharded)));
}

Result<std::shared_ptr<EntropyEngine>> EntropyEngine::Open(
    const std::string& path, SummaryOptions opts, Env* env) {
  if (std::filesystem::is_directory(path)) {
    if (VersionSet::IsVersionedRoot(path, env)) {
      // Resolve the atomic CURRENT pointer to the live version's store
      // directory; opening the root after a publish sees the new version,
      // while an engine already opened on the previous one keeps serving
      // its (immutable) files.
      VersionSet::Options vopts;
      vopts.verify_checksums = opts.verify_checksums;
      ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> versions,
                       VersionSet::Open(path, env, vopts));
      if (versions->current() == 0) {
        return Status::FailedPrecondition(
            "versioned root has no published version: " + path);
      }
      return Open(versions->CurrentDir(), opts, env);
    }
    if (ShardedStore::IsShardedDir(path, env)) {
      ASSIGN_OR_RETURN(std::shared_ptr<ShardedStore> sharded,
                       ShardedStore::Load(path, opts, env));
      return FromSharded(std::move(sharded));
    }
    ASSIGN_OR_RETURN(std::shared_ptr<SourceStore> store,
                     SourceStore::Load(path, opts, env));
    return FromStore(std::move(store));
  }
  ASSIGN_OR_RETURN(std::shared_ptr<EntropySummary> summary,
                   EntropySummary::Load(path, opts, env));
  return FromSummary(std::move(summary));
}

size_t EntropyEngine::num_shards() const {
  return sharded_ != nullptr ? sharded_->num_shards() : 1;
}

size_t EntropyEngine::num_summaries() const {
  if (sharded_ != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      total += sharded_->shard(s).size();
    }
    return total;
  }
  return store_ ? store_->size() : 1;
}

size_t EntropyEngine::num_samples() const {
  if (sharded_ != nullptr) {
    size_t total = 0;
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      total += sharded_->shard(s).num_samples();
    }
    return total;
  }
  return store_ ? store_->num_samples() : 0;
}

double EntropyEngine::n() const {
  return sharded_ != nullptr ? sharded_->n() : primary_->n();
}

EngineStats EntropyEngine::stats() const {
  EngineStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  return s;
}

Result<QueryEstimate> EntropyEngine::AnswerCount(
    const CountingQuery& q, RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    // Per-shard routing decisions live on ShardedStore::AnswerCount; the
    // facade-level decision carries the merged variance plus the
    // pruned/scanned shard counters.
    if (decision == nullptr) return sharded_->AnswerCount(q);
    *decision = RouteDecision{};
    std::vector<RouteDecision> per_shard;
    ASSIGN_OR_RETURN(QueryEstimate est, sharded_->AnswerCount(q, &per_shard));
    decision->expected_variance = est.variance;
    for (const RouteDecision& d : per_shard) {
      ++(d.pruned ? decision->shards_pruned : decision->shards_scanned);
    }
    return est;
  }
  if (router_ != nullptr) return router_->Answer(q, decision);
  if (decision != nullptr) *decision = RouteDecision{};
  auto est = primary_->AnswerCount(q);
  if (est.ok() && decision != nullptr) {
    decision->expected_variance = est->variance;
    decision->summary_variance = est->variance;
  }
  return est;
}

Result<std::vector<QueryEstimate>> EntropyEngine::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<RouteDecision>* decisions) const {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(qs.size(), std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    ASSIGN_OR_RETURN(std::vector<QueryEstimate> out, sharded_->AnswerAll(qs));
    if (decisions != nullptr) {
      decisions->assign(qs.size(), RouteDecision{});
      for (size_t i = 0; i < out.size(); ++i) {
        (*decisions)[i].expected_variance = out[i].variance;
      }
    }
    return out;
  }
  if (router_ != nullptr) return router_->AnswerAll(qs, decisions);
  if (decisions != nullptr) decisions->assign(qs.size(), RouteDecision{});
  std::vector<QueryEstimate> out(qs.size());
  std::vector<Status> statuses(qs.size(), Status::OK());
  ParallelFor(qs.size(), 2, [&](size_t i) {
    auto est = primary_->AnswerCount(qs[i]);
    if (!est.ok()) {
      statuses[i] = est.status();
      return;
    }
    out[i] = *est;
    if (decisions != nullptr) (*decisions)[i].expected_variance = est->variance;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

const EntropySummary& EntropyEngine::RouteFor(
    const CountingQuery& q, const std::vector<AttrId>& extra_attrs,
    RouteDecision* decision,
    std::optional<QueryEstimate>* filter_count) const {
  if (decision != nullptr) *decision = RouteDecision{};
  if (router_ == nullptr || q.num_attributes() != store_->num_attributes()) {
    // Arity errors surface from the summary's own validation.
    return *primary_;
  }
  std::vector<uint8_t> constrained = q.ConstrainedMask();
  for (AttrId a : extra_attrs) {
    if (a < constrained.size()) constrained[a] = 1;
  }
  size_t covered = 0;
  std::vector<size_t> candidates =
      router_->CoveringEntries(constrained, &covered);
  size_t index = candidates.front();
  if (candidates.size() > 1) {
    // Tie-break like QueryRouter::Answer does, using the filter count's
    // variance as the routing objective (the aggregate itself would cost
    // a batched derivative pass per candidate).
    double best_var = 0.0;
    bool have = false;
    for (size_t k : candidates) {
      auto est = store_->summary(k).AnswerCount(q);
      if (!est.ok()) continue;
      if (!have || est->variance < best_var) {
        best_var = est->variance;
        index = k;
        have = true;
        if (filter_count != nullptr) *filter_count = *est;
      }
    }
  }
  if (decision != nullptr) {
    decision->index = index;
    decision->covered_pairs = covered;
    decision->candidates = candidates.size();
    decision->fallback = covered == 0;
  }
  return store_->summary(index);
}

Result<QueryEstimate> EntropyEngine::AnswerSum(
    AttrId a, const std::vector<double>& weights, const CountingQuery& q,
    RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    if (decision == nullptr) return sharded_->AnswerSum(a, weights, q);
    *decision = RouteDecision{};
    std::vector<RouteDecision> per_shard;
    ASSIGN_OR_RETURN(QueryEstimate est,
                     sharded_->AnswerSum(a, weights, q, &per_shard));
    decision->expected_variance = est.variance;
    for (const RouteDecision& d : per_shard) {
      ++(d.pruned ? decision->shards_pruned : decision->shards_scanned);
    }
    return est;
  }
  std::optional<QueryEstimate> routed_cnt;
  const EntropySummary& s = RouteFor(q, {a}, decision, &routed_cnt);
  // Hybrid stage for SUM: the router's stage-3 comparison on the filter
  // count's variance (the shared routing objective), then answer the
  // aggregate from the winner. The tie-break may have evaluated the
  // winner's count already; reuse it.
  if (router_ != nullptr && store_->num_samples() > 0 &&
      q.num_attributes() == store_->num_attributes()) {
    auto cnt = routed_cnt.has_value() ? Result<QueryEstimate>(*routed_cnt)
                                      : s.AnswerCount(q);
    if (cnt.ok()) {
      size_t sample_index = 0;
      ASSIGN_OR_RETURN(
          const bool from_sample,
          router_->HybridChallenge(q, *cnt, decision, &sample_index, nullptr));
      if (from_sample) {
        auto est =
            store_->sample_source(sample_index).AnswerSum(a, weights, q);
        if (est.ok() && decision != nullptr) {
          decision->expected_variance = est->variance;
        }
        return est;
      }
    }
  }
  auto est = s.AnswerSum(a, weights, q);
  if (est.ok() && decision != nullptr) {
    decision->expected_variance = est->variance;
  }
  return est;
}

Result<QueryEstimate> EntropyEngine::AnswerAvg(
    AttrId a, const std::vector<double>& weights, const CountingQuery& q,
    RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    if (decision != nullptr) *decision = RouteDecision{};
    ASSIGN_OR_RETURN(QueryEstimate est, sharded_->AnswerAvg(a, weights, q));
    if (decision != nullptr) decision->expected_variance = est.variance;
    return est;
  }
  const EntropySummary& s = RouteFor(q, {a}, decision);
  auto est = s.AnswerAvg(a, weights, q);
  if (est.ok() && decision != nullptr) {
    decision->expected_variance = est->variance;
  }
  return est;
}

Result<std::vector<QueryEstimate>> EntropyEngine::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base, RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    if (decision != nullptr) *decision = RouteDecision{};
    return sharded_->AnswerGroupByAttribute(a, base);
  }
  return RouteFor(base, {a}, decision).AnswerGroupByAttribute(a, base);
}

Result<std::map<std::vector<Code>, QueryEstimate>> EntropyEngine::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys, const CountingQuery& base,
    RouteDecision* decision) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (sharded_ != nullptr) {
    if (decision != nullptr) *decision = RouteDecision{};
    return sharded_->AnswerGroupBy(attrs, keys, base);
  }
  return RouteFor(base, attrs, decision).AnswerGroupBy(attrs, keys, base);
}

}  // namespace entropydb
