#ifndef ENTROPYDB_ENGINE_SUMMARY_STORE_H_
#define ENTROPYDB_ENGINE_SUMMARY_STORE_H_

/// \file summary_store.h
/// \brief Compatibility shim: the PR 2-era SummaryStore grew into
/// SourceStore (summaries AND sample companions behind one store
/// directory). `SummaryStore` remains an alias there; include
/// engine/source_store.h in new code.

#include "engine/source_store.h"

#endif  // ENTROPYDB_ENGINE_SUMMARY_STORE_H_
