#ifndef ENTROPYDB_ENGINE_SUMMARY_STORE_H_
#define ENTROPYDB_ENGINE_SUMMARY_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "maxent/budget_advisor.h"
#include "maxent/summary.h"
#include "stats/pair_selector.h"
#include "stats/selector.h"
#include "storage/table.h"

namespace entropydb {

/// Build-time knobs for a multi-summary store.
struct StoreOptions {
  /// Number of summaries K; each models one of the top-K ranked attribute
  /// pairs (attribute-cover order, the paper's recommended strategy).
  /// Capped at the number of available pairs.
  size_t num_summaries = 3;
  /// Total 2-D statistic budget B, split evenly: each summary's pair gets
  /// B / K statistics.
  size_t total_budget = 1200;
  /// When true, BudgetAdvisor::Advise decides BOTH how many pairs to model
  /// (K = best candidate's Ba) and which ones, overriding `num_summaries`.
  /// Costs several trial summary builds (Sec 4.3 breadth-vs-depth search).
  bool use_budget_advisor = false;
  /// 2-D statistic selection heuristic per pair.
  SelectionHeuristic heuristic = SelectionHeuristic::kComposite;
  /// Attributes to exclude from pairing (e.g. near-uniform ones).
  std::vector<AttrId> exclude;
  /// Solver / polynomial knobs, shared by every summary build.
  SummaryOptions summary;
};

/// One summary of the store plus the attribute pairs it models — the
/// routing metadata QueryRouter keys on.
struct StoreEntry {
  std::shared_ptr<EntropySummary> summary;
  std::vector<ScoredPair> pairs;
};

/// \brief Owns K EntropySummaries, each modeling the 2-D statistics of one
/// highly-correlated attribute pair, so a router can answer every query
/// from the summary that covers it best (the paper builds Ent1&2 / Ent3&4 /
/// Ent1&2&3 exactly this way; the store productionizes the idea).
///
/// Build ranks pairs by bias-corrected Cramér's V, picks the top K by
/// attribute cover (or lets BudgetAdvisor choose the breadth-vs-depth
/// split), and solves the K summaries IN PARALLEL on the shared thread
/// pool — summary builds are independent, and nested solver fan-outs
/// degrade inline on worker threads (see common/thread_pool.h).
///
/// Save/Load persist the whole store as a directory (one MANIFEST plus one
/// .edb file per summary), restoring without re-solving; loads are also
/// parallel. All summaries share the relation's attribute schema; queries
/// are position-compatible across the store.
class SummaryStore {
 public:
  static Result<std::shared_ptr<SummaryStore>> Build(const Table& table,
                                                     StoreOptions opts = {});

  size_t size() const { return entries_.size(); }
  const StoreEntry& entry(size_t k) const { return entries_[k]; }
  const EntropySummary& summary(size_t k) const {
    return *entries_[k].summary;
  }
  std::shared_ptr<EntropySummary> summary_ptr(size_t k) const {
    return entries_[k].summary;
  }

  /// Index of the fallback entry for queries no summary covers: the entry
  /// whose pairs span the most attributes, ties broken toward the most
  /// correlated (lowest index).
  size_t widest() const { return widest_; }

  // Schema accessors, identical across entries (validated on Build/Load).
  const std::vector<std::string>& attr_names() const {
    return entries_.front().summary->attr_names();
  }
  const std::vector<Domain>& domains() const {
    return entries_.front().summary->domains();
  }
  bool has_domains() const {
    return entries_.front().summary->has_domains();
  }
  double n() const { return entries_.front().summary->n(); }
  size_t num_attributes() const {
    return entries_.front().summary->num_attributes();
  }

  /// Persists the store into directory `dir` (created if missing):
  /// `dir/MANIFEST` plus `dir/summary_<k>.edb` per entry.
  Status Save(const std::string& dir) const;
  /// Restores a saved store without re-solving (summaries load in
  /// parallel).
  static Result<std::shared_ptr<SummaryStore>> Load(const std::string& dir,
                                                    SummaryOptions opts = {});

  /// Assembles a store from already-built summaries (the path Load uses;
  /// also handy for tests). Entries must be non-empty and agree on the
  /// attribute schema.
  static Result<std::shared_ptr<SummaryStore>> FromEntries(
      std::vector<StoreEntry> entries);

 private:
  explicit SummaryStore(std::vector<StoreEntry> entries);

  std::vector<StoreEntry> entries_;
  size_t widest_ = 0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_SUMMARY_STORE_H_
