#include "engine/ingest.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/str_util.h"
#include "engine/sharded_store.h"
#include "storage/table_builder.h"
#include "storage/wal.h"
#include "storage/zone_map.h"

namespace entropydb {

namespace fs = std::filesystem;

namespace {

Schema SchemaFor(const std::vector<std::string>& names,
                 const std::vector<Domain>& domains) {
  std::vector<AttributeSpec> specs(names.size());
  for (size_t a = 0; a < names.size(); ++a) {
    specs[a].name = names[a];
    specs[a].type = domains[a].is_categorical() ? AttributeType::kCategorical
                                                : AttributeType::kNumeric;
    specs[a].buckets = domains[a].size();
  }
  return Schema{std::move(specs)};
}

/// Parses one journaled CSV batch against the store's pinned domains —
/// same dialect as storage/csv.cc, but rows must encode within the
/// existing domains (Finish rejects unknown labels; binned values clamp
/// to the outer buckets like every other encode).
Result<std::shared_ptr<Table>> ParseBatch(const Schema& schema,
                                          const std::vector<Domain>& domains,
                                          const std::string& text,
                                          uint64_t batch_index) {
  const std::string where = "ingest batch " + std::to_string(batch_index);
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty " + where);
  }
  auto header = SplitString(line, ',');
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("CSV header arity mismatch in " + where);
  }
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (std::string(StripWhitespace(header[a])) != schema.attribute(a).name) {
      return Status::InvalidArgument(
          "CSV header field '" + header[a] + "' != store attribute '" +
          schema.attribute(a).name + "' in " + where);
    }
  }
  TableBuilder builder(schema);
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    builder.SetDomain(a, domains[a]);
  }
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    auto fields = SplitString(line, ',');
    if (fields.size() != schema.num_attributes()) {
      return Status::Corruption("CSV row arity mismatch at line " +
                                std::to_string(line_no) + " of " + where);
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).type == AttributeType::kCategorical) {
        row.emplace_back(std::string(StripWhitespace(fields[a])));
      } else {
        ASSIGN_OR_RETURN(double v, ParseDouble(fields[a]));
        row.emplace_back(v);
      }
    }
    RETURN_NOT_OK(builder.AppendRow(row));
  }
  if (builder.num_buffered() == 0) {
    return Status::InvalidArgument(where + " has no rows");
  }
  return builder.Finish();
}

/// Seals journal record `batch_index` into shard "shard_b<i>" and flips
/// the manifest. Idempotent under replay: the shard name is a function of
/// the batch index, so a rebuilt shard atomically replaces any
/// half-published orphan from a crashed previous attempt.
Status SealBatch(const std::string& dir, ShardedStore::Manifest* m,
                 uint64_t batch_index, const std::string& payload,
                 const SourceStore& shard0, StoreOptions opts, Env* env) {
  // Every shard must model the SAME pairs (routing metadata is uniform
  // across shards; see ShardedStore::Build) — force shard 0's choice.
  opts.forced_pairs = InheritedPairs(shard0);
  opts.use_budget_advisor = false;
  // Decorrelate companion draws across batches (same rule the sharded
  // build applies across shards).
  opts.sample_seed += batch_index << 20;
  ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                   ParseIngestBatch(shard0, payload, batch_index));
  ASSIGN_OR_RETURN(std::shared_ptr<SourceStore> shard,
                   SourceStore::Build(*table, opts));
  const std::string shard_name = "shard_b" + std::to_string(batch_index);
  const std::string shard_dir = (fs::path(dir) / shard_name).string();
  RETURN_NOT_OK(shard->Save(shard_dir, env));
  // The sealed shard's zone map is durable BEFORE the manifest names it:
  // the manifest must never point at a zone map that could vanish in a
  // crash (a missing file only degrades to full fan-out, but the write
  // order keeps even that from happening on a clean seal). Replay after a
  // crash rebuilds both the shard and its map idempotently.
  RETURN_NOT_OK(ZoneMap::Build(*table).Save(
      env, (fs::path(shard_dir) / kZoneMapFileName).string()));
  RETURN_NOT_OK(env->SyncDir(shard_dir));
  // Keep the manifest's per-shard row counts (the compaction planner's
  // oversize trigger) aligned with the shard list; a legacy manifest
  // with no counts stays count-free rather than partially counted.
  if (m->shard_rows.size() == m->shard_dirs.size()) {
    m->shard_rows.push_back(table->num_rows());
  } else {
    m->shard_rows.clear();
  }
  m->shard_dirs.push_back(shard_name);
  m->zonemap_dirs.push_back(shard_name);
  m->wal_sealed = batch_index + 1;
  // The commit point: shard list and sealed cursor flip together.
  return ShardedStore::WriteManifest(dir, *m, env);
}

/// Loads shard 0 — the donor of the modeled pairs and the pinned domains
/// every batch encodes against.
Result<std::shared_ptr<SourceStore>> LoadShard0(
    const std::string& dir, const ShardedStore::Manifest& m,
    const StoreOptions& opts, Env* env) {
  ASSIGN_OR_RETURN(
      std::shared_ptr<SourceStore> shard0,
      SourceStore::Load((fs::path(dir) / m.shard_dirs.front()).string(),
                        opts.summary, env));
  if (!shard0->has_domains()) {
    return Status::FailedPrecondition(
        "store carries no persisted domains; ingest cannot encode rows in " +
        dir);
  }
  return shard0;
}

Status CheckSealCursor(const std::string& dir,
                       const ShardedStore::Manifest& m,
                       const std::vector<std::string>& records) {
  if (m.wal_sealed > records.size()) {
    return Status::Corruption(
        "manifest claims " + std::to_string(m.wal_sealed) +
        " sealed batches but the journal holds only " +
        std::to_string(records.size()) + " in " + dir);
  }
  return Status::OK();
}

/// Seals records [m->wal_sealed, records.size()); returns how many.
Result<uint64_t> SealPending(const std::string& dir,
                             ShardedStore::Manifest* m,
                             const std::vector<std::string>& records,
                             const SourceStore& shard0,
                             const StoreOptions& opts, Env* env) {
  uint64_t sealed = 0;
  for (uint64_t i = m->wal_sealed; i < records.size(); ++i) {
    RETURN_NOT_OK(SealBatch(dir, m, i, records[i], shard0, opts, env));
    ++sealed;
  }
  return sealed;
}

}  // namespace

Result<std::shared_ptr<Table>> ParseIngestBatch(const SourceStore& donor,
                                                const std::string& text,
                                                uint64_t batch_index) {
  return ParseBatch(SchemaFor(donor.attr_names(), donor.domains()),
                    donor.domains(), text, batch_index);
}

std::vector<ScoredPair> InheritedPairs(const SourceStore& donor) {
  std::vector<ScoredPair> pairs;
  for (size_t k = 0; k < donor.size(); ++k) {
    for (const ScoredPair& p : donor.entry(k).pairs) pairs.push_back(p);
  }
  return pairs;
}

Result<IngestReport> RecoverPending(const std::string& store_dir,
                                    StoreOptions opts, Env* env) {
  ASSIGN_OR_RETURN(ShardedStore::Manifest m,
                   ShardedStore::ReadManifest(store_dir, env,
                                              opts.summary.verify_checksums));
  ASSIGN_OR_RETURN(
      WalContents wal,
      ReadWal(env, (fs::path(store_dir) / kIngestWalName).string()));
  RETURN_NOT_OK(CheckSealCursor(store_dir, m, wal.records));
  IngestReport report;
  if (m.wal_sealed == wal.records.size()) return report;  // nothing pending
  ASSIGN_OR_RETURN(std::shared_ptr<SourceStore> shard0,
                   LoadShard0(store_dir, m, opts, env));
  ASSIGN_OR_RETURN(report.sealed, SealPending(store_dir, &m, wal.records,
                                              *shard0, opts, env));
  report.recovered = report.sealed;
  return report;
}

Result<IngestReport> AppendBatch(const std::string& store_dir,
                                 const std::string& csv_text,
                                 StoreOptions opts, Env* env) {
  ASSIGN_OR_RETURN(ShardedStore::Manifest m,
                   ShardedStore::ReadManifest(store_dir, env,
                                              opts.summary.verify_checksums));
  const std::string wal_path =
      (fs::path(store_dir) / kIngestWalName).string();
  ASSIGN_OR_RETURN(WalContents wal, ReadWal(env, wal_path));
  RETURN_NOT_OK(CheckSealCursor(store_dir, m, wal.records));
  ASSIGN_OR_RETURN(std::shared_ptr<SourceStore> shard0,
                   LoadShard0(store_dir, m, opts, env));
  // Validate BEFORE journaling: a malformed batch is rejected here, not
  // turned into a journal record every future replay chokes on.
  RETURN_NOT_OK(ParseBatch(SchemaFor(shard0->attr_names(),
                                     shard0->domains()),
                           shard0->domains(), csv_text,
                           wal.records.size())
                    .status());
  if (wal.truncated_tail) {
    // A crashed append left a partial record behind the last good one.
    // Drop it BEFORE appending — new bytes after torn ones would be
    // unreachable to every future replay.
    std::fprintf(stderr,
                 "entropydb: warning: truncating torn ingest journal tail "
                 "in %s at %llu bytes\n",
                 store_dir.c_str(),
                 static_cast<unsigned long long>(wal.valid_bytes));
    RETURN_NOT_OK(env->Truncate(wal_path, wal.valid_bytes));
  }

  IngestReport report;
  // Journal next: once AddRecord + Sync return, the rows survive any
  // crash and a later call replays them.
  ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                   WalWriter::Open(env, wal_path));
  RETURN_NOT_OK(writer->AddRecord(csv_text));
  RETURN_NOT_OK(writer->Sync());
  RETURN_NOT_OK(writer->Close());
  report.journaled = 1;

  const uint64_t pending = wal.records.size() - m.wal_sealed;
  wal.records.push_back(csv_text);
  ASSIGN_OR_RETURN(report.sealed, SealPending(store_dir, &m, wal.records,
                                              *shard0, opts, env));
  report.recovered = report.sealed > 0 ? pending : 0;
  return report;
}

}  // namespace entropydb
