#ifndef ENTROPYDB_ENGINE_COMPACTION_H_
#define ENTROPYDB_ENGINE_COMPACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "engine/source_store.h"

namespace entropydb {

/// \brief Background compaction of a v4 sharded store: merge the small
/// `shard_b*` batch shards the WAL-backed ingest path accumulates (and
/// split oversized ones) back into a bounded set of full-size shards.
///
/// The other half of the LSM-style lifecycle engine/ingest.h opened:
/// `--append` seals one small shard per batch, so a long-running ingest
/// workload degrades toward one shard per batch — every query pays a
/// per-shard routing cost and the per-shard maxent models see ever
/// thinner row slices. Compaction re-partitions all journal-backed rows
/// under the store's own partition scheme and publishes the replacement
/// shards with ONE atomic manifest flip, so readers always see exactly
/// the pre- or the post-compaction store.
///
/// Row provenance: only *batch-lineage* shards are compactable — the
/// `shard_b<i>` dirs ingest sealed and the `shard_c<g>_<j>` dirs earlier
/// compactions produced. Their rows are exactly the sealed journal
/// records [0, wal_sealed), which the driver re-parses; the journal is
/// never truncated (see ROADMAP.md), so this recovery is always
/// possible. Base shards (`shard_<s>` from the original bulk build)
/// carry no persisted raw rows and are never selected; splitting them
/// would need the original relation.
///
/// Commit protocol (the crash argument, swept op-by-op in
/// tests/engine/compaction_crash_test.cc):
///   1. Every replacement shard is built and atomically published at
///      `<dir>/shard_c<gen>_<j>` (staged `.tmp-*` sibling + rename, the
///      same protocol as every store save), with its zone map written
///      and the shard dir synced — all while the live manifest still
///      points at the old shards.
///   2. ONE ShardedStore::WriteManifest swaps the shard list, records
///      the bumped compaction generation, and keeps `wal_sealed`
///      unchanged. This rename is the only commit point.
///   3. The replaced batch-lineage dirs are removed. A crash before (2)
///      leaves the old store plus unreferenced `shard_c*` orphans; a
///      crash after it leaves the new store plus unreferenced `shard_b*`
///      leftovers. ShardedStore::Load garbage-collects any `shard_*`
///      entry the manifest does not reference, so the next open is
///      always exactly one of the two states.
///
/// Fidelity: the replacement shards model the same attribute pairs as
/// shard 0 (StoreOptions::forced_pairs, the ingest rule) over the same
/// row multiset, so merged estimates agree with the pre-compaction store
/// — exactly so (within the 1e-9 merge bar) when the per-shard models
/// reproduce their shard distributions exactly, which
/// tests/engine/compaction_test.cc pins across all three partition
/// schemes.

/// True for shard directory names whose rows are journal-backed and
/// therefore compactable: ingest batch shards ("shard_b<i>") and shards
/// a previous compaction produced ("shard_c<gen>_<j>").
bool IsBatchLineageShard(const std::string& name);

/// Trigger and rebuild knobs for one compaction pass.
struct CompactionOptions {
  /// Count trigger: compact once the store holds MORE than this many
  /// `shard_b*` batch shards.
  size_t max_batch_shards = 4;
  /// Oversize trigger and output sizing: a batch-lineage shard holding
  /// more rows than this is split, and the rebuilt shard set targets
  /// ceil(total_rows / split_threshold) outputs. 0 disables splitting —
  /// all batch-lineage rows merge into a single replacement shard. The
  /// oversize trigger needs the manifest's per-shard row counts
  /// (Manifest::shard_rows); manifests from before that field only
  /// trigger on the batch-shard count.
  uint64_t split_threshold = 0;
  /// Run whenever at least one batch-lineage shard exists, regardless of
  /// the triggers above.
  bool force = false;
  /// Build knobs for every replacement shard. The modeled pairs are
  /// always inherited from shard 0 (forced_pairs is overwritten) and the
  /// sample seed is offset deterministically per output shard:
  /// generation g's shard j is built with
  /// `sample_seed += (g << 32) + (j << 20)`, so batch, base, and
  /// compacted shards all draw decorrelated companions and a rebuild is
  /// reproducible (tests/engine/compaction_test.cc reconstructs shards
  /// from this rule).
  StoreOptions store;
};

/// What CompactionPlanner::Plan decided, and why.
struct CompactionPlan {
  /// True when RunCompaction would rebuild shards under `opts`.
  bool triggered = false;
  /// The batch-lineage shard dirs a run would replace (manifest order).
  std::vector<std::string> candidates;
  /// Rows in the sealed journal records — the candidates' total rows.
  uint64_t total_rows = 0;
  /// Target number of replacement shards (the driver may lower it when
  /// the partition scheme cannot fill that many, e.g. a thin attribute
  /// slice or a hash layout that leaves a shard empty).
  size_t output_shards = 0;
  /// Generation the replacement shards would carry (manifest gen + 1).
  uint64_t generation = 0;
  /// Human-readable trigger (or non-trigger) explanation.
  std::string reason;
};

/// Scans a sharded store's manifest and journal — without loading any
/// shard — and reports what a compaction pass would do.
class CompactionPlanner {
 public:
  static Result<CompactionPlan> Plan(const std::string& store_dir,
                                     const CompactionOptions& opts,
                                     Env* env = Env::Default());
};

/// What one RunCompaction call did.
struct CompactionReport {
  /// False when the triggers did not fire (store untouched).
  bool ran = false;
  /// The batch-lineage shard dirs the run replaced (and removed).
  std::vector<std::string> replaced_shards;
  /// The `shard_c<gen>_<j>` dirs the run published.
  std::vector<std::string> new_shards;
  /// Journal-backed rows re-partitioned into the new shards.
  uint64_t rows = 0;
  /// The store's compaction generation after the call.
  uint64_t generation = 0;
};

/// Plans and, when triggered, executes one compaction pass on the store
/// at `store_dir` (see the file comment for the protocol). On success
/// the store answers every query the same store it replaced did; on any
/// failure the next ShardedStore::Load observes exactly the pre- or the
/// post-compaction state and garbage-collects the leftovers.
Result<CompactionReport> RunCompaction(const std::string& store_dir,
                                       const CompactionOptions& opts,
                                       Env* env = Env::Default());

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_COMPACTION_H_
