#ifndef ENTROPYDB_ENGINE_INGEST_H_
#define ENTROPYDB_ENGINE_INGEST_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/result.h"
#include "engine/source_store.h"

namespace entropydb {

/// Name of the ingest journal inside a sharded store directory.
inline constexpr char kIngestWalName[] = "ingest.wal";

/// What one ingest call did, for tool output and tests.
struct IngestReport {
  /// Records appended to the journal by this call (0 or 1).
  uint64_t journaled = 0;
  /// Batches sealed into shards by this call, including replayed ones.
  uint64_t sealed = 0;
  /// Of `sealed`, how many were pending from a previous (crashed) call.
  uint64_t recovered = 0;
};

/// \brief WAL-backed ingest: append row batches to a sharded store without
/// rebuilding it.
///
/// The protocol (engine/sharded_store.h holds the manifest format,
/// storage/wal.h the record framing):
///
///   1. The raw CSV batch is appended to `<dir>/ingest.wal` and fsynced —
///      from here the rows survive any crash.
///   2. The batch is sealed: its rows are encoded against the store's
///      persisted domains, a fresh shard (a full SourceStore, modeling the
///      SAME attribute pairs as shard 0 so routing metadata stays uniform)
///      is built and atomically published at `<dir>/shard_b<i>`, and one
///      atomic manifest rewrite appends the shard AND advances the
///      `wal_sealed` cursor together.
///
/// A crash anywhere in step 2 is repaired by replay: every call first
/// seals journal records `[wal_sealed, end)`, rebuilding shards under
/// their deterministic batch-indexed names (idempotent — a half-published
/// orphan shard is simply overwritten). A torn journal tail (partial last
/// record from a crashed append) is truncated before new records are
/// written behind it; fully-synced records are never lost. The journal
/// itself is append-only and never compacted (see ROADMAP.md).
///
/// Constraints: the store must be sharded (v3/v4) and carry persisted
/// domains; batch rows must encode within them — ingest never widens a
/// domain, and a row with an unknown label fails the seal with the batch
/// kept pending in the journal.

/// Appends one CSV batch (header row + data rows, matching the store
/// schema) to the store's journal, then seals it and any pending
/// predecessors. `opts` carries the per-batch shard build knobs (budget,
/// solver, sample companions); the modeled pairs are always taken from
/// shard 0, and `opts.summary.verify_checksums` governs manifest/shard
/// reads.
Result<IngestReport> AppendBatch(const std::string& store_dir,
                                 const std::string& csv_text,
                                 StoreOptions opts = {},
                                 Env* env = Env::Default());

/// Seals any journal records a previous call left pending, without
/// appending. A no-op (report of zeros) when the journal is fully sealed.
Result<IngestReport> RecoverPending(const std::string& store_dir,
                                    StoreOptions opts = {},
                                    Env* env = Env::Default());

/// Parses one journaled CSV batch (header + rows) against `donor`'s
/// schema and pinned domains — the encode every seal and every replay
/// performs. Shared with compaction (engine/compaction.h), which
/// re-parses the sealed records to recover batch-lineage rows, and
/// exposed so tests can reconstruct a compaction's input exactly.
/// `batch_index` only labels error messages.
Result<std::shared_ptr<Table>> ParseIngestBatch(const SourceStore& donor,
                                                const std::string& text,
                                                uint64_t batch_index);

/// The modeled pairs of `donor`, flattened in entry order — what every
/// ingest-sealed and compaction-built shard forces into its own build so
/// routing metadata stays uniform across shards (the ShardedStore::Build
/// rule, applied incrementally).
std::vector<ScoredPair> InheritedPairs(const SourceStore& donor);

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_INGEST_H_
