#include "engine/compaction.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/str_util.h"
#include "common/thread_pool.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"
#include "storage/partitioner.h"
#include "storage/table_builder.h"
#include "storage/wal.h"
#include "storage/zone_map.h"

namespace entropydb {

namespace fs = std::filesystem;

namespace {

/// Data rows of one journaled CSV batch (header excluded, blank lines
/// skipped — the exact rows ParseIngestBatch would encode), counted
/// without encoding anything: the planner must stay cheap.
uint64_t CsvRowCount(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  uint64_t rows = 0;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (!StripWhitespace(line).empty()) ++rows;
  }
  return rows;
}

/// The planning rule, shared by Plan and RunCompaction so the driver
/// executes exactly what the planner reports.
Result<CompactionPlan> PlanFromState(const std::string& dir,
                                     const ShardedStore::Manifest& m,
                                     const WalContents& wal,
                                     const CompactionOptions& opts) {
  CompactionPlan plan;
  plan.generation = m.compaction_gen + 1;
  if (m.wal_sealed > wal.records.size()) {
    return Status::Corruption(
        "manifest claims " + std::to_string(m.wal_sealed) +
        " sealed batches but the journal holds only " +
        std::to_string(wal.records.size()) + " in " + dir);
  }
  size_t batch_shards = 0;
  for (const std::string& d : m.shard_dirs) {
    if (!IsBatchLineageShard(d)) continue;
    plan.candidates.push_back(d);
    if (d.rfind("shard_b", 0) == 0) ++batch_shards;
  }
  if (plan.candidates.empty()) {
    plan.reason = "no batch-lineage shards to compact";
    return plan;
  }
  for (uint64_t i = 0; i < m.wal_sealed; ++i) {
    plan.total_rows += CsvRowCount(wal.records[i]);
  }
  if (plan.total_rows == 0) {
    // Batch-lineage shards exist but the journal backs no rows: nothing
    // to rebuild them from, so leave the store alone rather than commit
    // an empty replacement.
    plan.reason = "batch-lineage shards but no sealed journal rows";
    return plan;
  }

  std::string oversized;
  if (opts.split_threshold > 0 &&
      m.shard_rows.size() == m.shard_dirs.size()) {
    for (size_t i = 0; i < m.shard_dirs.size(); ++i) {
      if (IsBatchLineageShard(m.shard_dirs[i]) &&
          m.shard_rows[i] > opts.split_threshold) {
        oversized = m.shard_dirs[i];
        break;
      }
    }
  }
  if (batch_shards > opts.max_batch_shards) {
    plan.triggered = true;
    plan.reason = std::to_string(batch_shards) + " batch shards exceed " +
                  std::to_string(opts.max_batch_shards);
  } else if (!oversized.empty()) {
    plan.triggered = true;
    plan.reason = oversized + " exceeds the split threshold of " +
                  std::to_string(opts.split_threshold) + " rows";
  } else if (opts.force) {
    plan.triggered = true;
    plan.reason = "forced";
  } else {
    plan.reason = "below the batch-shard and split thresholds";
  }

  plan.output_shards =
      opts.split_threshold > 0
          ? static_cast<size_t>((plan.total_rows + opts.split_threshold - 1) /
                                opts.split_threshold)
          : 1;
  plan.output_shards = std::max<size_t>(
      1, std::min<uint64_t>(plan.output_shards, plan.total_rows));
  return plan;
}

}  // namespace

bool IsBatchLineageShard(const std::string& name) {
  return name.rfind("shard_b", 0) == 0 || name.rfind("shard_c", 0) == 0;
}

Result<CompactionPlan> CompactionPlanner::Plan(const std::string& store_dir,
                                               const CompactionOptions& opts,
                                               Env* env) {
  ASSIGN_OR_RETURN(
      ShardedStore::Manifest m,
      ShardedStore::ReadManifest(store_dir, env,
                                 opts.store.summary.verify_checksums));
  ASSIGN_OR_RETURN(
      WalContents wal,
      ReadWal(env, (fs::path(store_dir) / kIngestWalName).string()));
  return PlanFromState(store_dir, m, wal, opts);
}

Result<CompactionReport> RunCompaction(const std::string& store_dir,
                                       const CompactionOptions& opts,
                                       Env* env) {
  ASSIGN_OR_RETURN(
      ShardedStore::Manifest m,
      ShardedStore::ReadManifest(store_dir, env,
                                 opts.store.summary.verify_checksums));
  ASSIGN_OR_RETURN(
      WalContents wal,
      ReadWal(env, (fs::path(store_dir) / kIngestWalName).string()));
  ASSIGN_OR_RETURN(CompactionPlan plan,
                   PlanFromState(store_dir, m, wal, opts));
  CompactionReport report;
  report.generation = m.compaction_gen;
  if (!plan.triggered) return report;

  // Shard 0 donates the modeled pairs and the pinned domains, exactly as
  // it does for every ingest seal (base shards always precede
  // batch-lineage ones in the manifest).
  ASSIGN_OR_RETURN(
      std::shared_ptr<SourceStore> shard0,
      SourceStore::Load((fs::path(store_dir) / m.shard_dirs.front()).string(),
                        opts.store.summary, env));
  if (!shard0->has_domains()) {
    return Status::FailedPrecondition(
        "store carries no persisted domains; compaction cannot re-encode "
        "journal rows in " + store_dir);
  }

  // Recover every batch-lineage row by re-parsing the sealed journal
  // records in order — deterministic, so round-robin re-partitioning is
  // reproducible and content-based schemes see the exact row multiset.
  std::vector<AttributeSpec> specs(shard0->num_attributes());
  for (AttrId a = 0; a < shard0->num_attributes(); ++a) {
    specs[a].name = shard0->attr_names()[a];
    specs[a].type = shard0->domains()[a].is_categorical()
                        ? AttributeType::kCategorical
                        : AttributeType::kNumeric;
    specs[a].buckets = shard0->domains()[a].size();
  }
  TableBuilder builder(Schema{std::move(specs)});
  for (AttrId a = 0; a < shard0->num_attributes(); ++a) {
    builder.SetDomain(a, shard0->domains()[a]);
  }
  std::vector<Code> codes(shard0->num_attributes());
  for (uint64_t i = 0; i < m.wal_sealed; ++i) {
    ASSIGN_OR_RETURN(std::shared_ptr<Table> batch,
                     ParseIngestBatch(*shard0, wal.records[i], i));
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      for (AttrId a = 0; a < batch->num_attributes(); ++a) {
        codes[a] = batch->at(r, a);
      }
      builder.AppendEncodedRow(codes);
    }
  }
  ASSIGN_OR_RETURN(std::shared_ptr<Table> rows, builder.Finish());

  // Re-partition under the store's own scheme. The planned shard count
  // is a target: a scheme can leave a shard empty (a hash layout at this
  // row count, or an attribute slice no row lands in), and a shard needs
  // rows to fit a model to — fall back toward fewer, fuller shards.
  std::vector<std::shared_ptr<Table>> parts;
  for (size_t k = std::min<size_t>(plan.output_shards, rows->num_rows());;
       --k) {
    PartitionOptions popts;
    popts.num_shards = k;
    popts.scheme = m.scheme;
    popts.partition_attr = m.partition_attr;
    auto attempt = TablePartitioner::Partition(*rows, popts);
    if (attempt.ok()) {
      parts = std::move(*attempt);
      break;
    }
    if (k <= 1) return attempt.status();
  }

  // Build and atomically publish every replacement shard while the live
  // manifest still points at the old ones. Builds are independent, so
  // they fan out; each inner Save stages and publishes its own dir.
  StoreOptions build_opts = opts.store;
  build_opts.forced_pairs = InheritedPairs(*shard0);
  build_opts.use_budget_advisor = false;
  const uint64_t gen = plan.generation;
  std::vector<std::string> new_dirs(parts.size());
  std::vector<Status> statuses(parts.size(), Status::OK());
  ParallelFor(parts.size(), 2, [&](size_t j) {
    StoreOptions per_shard = build_opts;
    // The documented seed rule (see CompactionOptions::store): offsets
    // decorrelate companion draws across generations and output shards
    // and make any rebuild reproducible.
    per_shard.sample_seed +=
        (gen << 32) + (static_cast<uint64_t>(j) << 20);
    auto built = SourceStore::Build(*parts[j], per_shard);
    if (!built.ok()) {
      statuses[j] = built.status();
      return;
    }
    new_dirs[j] =
        "shard_c" + std::to_string(gen) + "_" + std::to_string(j);
    const std::string shard_dir =
        (fs::path(store_dir) / new_dirs[j]).string();
    statuses[j] = (*built)->Save(shard_dir, env);
    if (statuses[j].ok()) {
      // Zone map durable BEFORE the manifest can name it (the ingest
      // seal's write order).
      statuses[j] = ZoneMap::Build(*parts[j]).Save(
          env, (fs::path(shard_dir) / kZoneMapFileName).string());
    }
    if (statuses[j].ok()) statuses[j] = env->SyncDir(shard_dir);
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  // The commit point: ONE manifest write swaps every replaced shard for
  // the new set, bumps the generation, and keeps wal_sealed unchanged —
  // a crash on either side of this rename leaves exactly the old or the
  // new store.
  ShardedStore::Manifest next;
  next.scheme = m.scheme;
  next.partition_attr = m.partition_attr;
  next.wal_sealed = m.wal_sealed;
  next.compaction_gen = gen;
  const bool rows_known = m.shard_rows.size() == m.shard_dirs.size();
  for (size_t i = 0; i < m.shard_dirs.size(); ++i) {
    if (IsBatchLineageShard(m.shard_dirs[i])) continue;
    next.shard_dirs.push_back(m.shard_dirs[i]);
    if (rows_known) next.shard_rows.push_back(m.shard_rows[i]);
    for (const std::string& z : m.zonemap_dirs) {
      if (z == m.shard_dirs[i]) {
        next.zonemap_dirs.push_back(z);
        break;
      }
    }
  }
  for (size_t j = 0; j < parts.size(); ++j) {
    next.shard_dirs.push_back(new_dirs[j]);
    next.zonemap_dirs.push_back(new_dirs[j]);
    if (rows_known) next.shard_rows.push_back(parts[j]->num_rows());
  }
  if (!rows_known) next.shard_rows.clear();
  RETURN_NOT_OK(ShardedStore::WriteManifest(store_dir, next, env));

  // GC the replaced dirs. The flip above already committed, so a crash
  // from here on still reopens as the post-compaction store — the next
  // Load sweeps whatever this pass left behind.
  for (const std::string& d : plan.candidates) {
    RETURN_NOT_OK(env->RemoveAll((fs::path(store_dir) / d).string()));
  }
  RETURN_NOT_OK(env->SyncDir(store_dir));

  report.ran = true;
  report.replaced_shards = plan.candidates;
  report.new_shards = std::move(new_dirs);
  report.rows = rows->num_rows();
  report.generation = gen;
  return report;
}

}  // namespace entropydb
