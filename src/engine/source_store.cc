#include "engine/source_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include "common/thread_pool.h"
#include "sampling/sample_io.h"
#include "sampling/stratified_sampler.h"
#include "sampling/uniform_sampler.h"

namespace entropydb {

namespace fs = std::filesystem;

namespace {

void WritePairs(std::ostream& out, const std::vector<ScoredPair>& pairs) {
  char buf[32];
  out << "pairs " << pairs.size();
  for (const ScoredPair& p : pairs) {
    std::snprintf(buf, sizeof(buf), "%.17g", p.cramers_v);
    out << ' ' << p.a << ' ' << p.b << ' ' << buf;
  }
}

Status ReadPairs(std::istream& in, const std::string& dir,
                 std::vector<ScoredPair>* pairs) {
  std::string token;
  size_t npairs = 0;
  if (!(in >> token >> npairs) || token != "pairs") {
    return Status::Corruption("bad pair record in " + dir);
  }
  pairs->resize(npairs);
  for (ScoredPair& p : *pairs) {
    if (!(in >> p.a >> p.b >> p.cramers_v)) {
      return Status::Corruption("bad pair record in " + dir);
    }
  }
  return Status::OK();
}

}  // namespace

SourceStore::SourceStore(std::vector<StoreEntry> entries,
                         std::vector<SampleEntry> samples)
    : entries_(std::move(entries)), samples_(std::move(samples)) {
  size_t best_span = 0;
  for (size_t k = 0; k < entries_.size(); ++k) {
    std::set<AttrId> span;
    for (const ScoredPair& p : entries_[k].pairs) {
      span.insert(p.a);
      span.insert(p.b);
    }
    if (span.size() > best_span) {
      best_span = span.size();
      widest_ = k;
    }
  }
  sample_sources_.reserve(samples_.size());
  for (const SampleEntry& s : samples_) {
    sample_sources_.push_back(std::make_shared<SampleSource>(s.sample));
  }
}

Result<std::shared_ptr<SourceStore>> SourceStore::FromEntries(
    std::vector<StoreEntry> entries) {
  return FromParts(std::move(entries), {});
}

Result<std::shared_ptr<SourceStore>> SourceStore::FromParts(
    std::vector<StoreEntry> entries, std::vector<SampleEntry> samples) {
  if (entries.empty()) {
    return Status::InvalidArgument("a source store needs at least one summary");
  }
  for (const StoreEntry& e : entries) {
    if (e.summary == nullptr) {
      return Status::InvalidArgument("store entry without a summary");
    }
    if (e.summary->num_attributes() != entries.front().summary->num_attributes() ||
        e.summary->n() != entries.front().summary->n()) {
      return Status::InvalidArgument(
          "store entries disagree on the relation schema");
    }
  }
  const EntropySummary& ref = *entries.front().summary;
  for (const SampleEntry& s : samples) {
    if (s.sample == nullptr || s.sample->rows == nullptr) {
      return Status::InvalidArgument("store sample without a row table");
    }
    if (s.sample->rows->num_attributes() != ref.num_attributes()) {
      return Status::InvalidArgument(
          "store sample disagrees on the relation schema");
    }
    // Same active domains attribute by attribute — a same-arity sample of
    // a DIFFERENT relation must not silently join the store (its codes
    // would be position-compatible but mean different values).
    for (AttrId a = 0; a < ref.num_attributes(); ++a) {
      if (s.sample->rows->domain(a).size() != ref.registry().domain_size(a)) {
        return Status::InvalidArgument(
            "store sample domain size mismatch on attribute " +
            std::to_string(a));
      }
    }
    if (s.sample->weights.size() != s.sample->rows->num_rows()) {
      return Status::InvalidArgument("store sample weight/row count mismatch");
    }
  }
  return std::shared_ptr<SourceStore>(
      new SourceStore(std::move(entries), std::move(samples)));
}

Result<std::vector<ScoredPair>> SourceStore::ResolvePairs(
    const Table& table, const StoreOptions& opts) {
  std::vector<ScoredPair> chosen;
  if (!opts.forced_pairs.empty()) {
    chosen = opts.forced_pairs;
  } else if (opts.use_budget_advisor) {
    AdvisorOptions aopts;
    aopts.exclude = opts.exclude;
    ASSIGN_OR_RETURN(std::vector<BudgetCandidate> candidates,
                     BudgetAdvisor::Advise(table, opts.total_budget, aopts));
    chosen = candidates.front().pairs;  // best split first
  } else {
    auto ranked = PairSelector::RankPairs(table, opts.exclude);
    chosen = PairSelector::Choose(ranked, opts.num_summaries,
                                  PairStrategy::kAttributeCover);
  }
  if (chosen.empty()) {
    return Status::InvalidArgument(
        "no attribute pairs available for a source store");
  }
  for (const ScoredPair& p : chosen) {
    if (p.a >= table.num_attributes() || p.b >= table.num_attributes()) {
      return Status::InvalidArgument(
          "forced pair references an attribute outside the relation");
    }
  }
  return chosen;
}

Result<std::shared_ptr<SourceStore>> SourceStore::Build(const Table& table,
                                                        StoreOptions opts) {
  ASSIGN_OR_RETURN(std::vector<ScoredPair> chosen,
                   ResolvePairs(table, opts));
  const size_t k = chosen.size();
  const size_t bs = std::max<size_t>(1, opts.total_budget / k);

  // Independent builds: select each pair's statistics and solve its model
  // in parallel. Outputs are disjoint slots, so results are deterministic.
  std::vector<StoreEntry> entries(k);
  std::vector<Status> statuses(k, Status::OK());
  StatisticSelector selector(opts.heuristic);
  ParallelFor(k, 2, [&](size_t i) {
    const ScoredPair& pair = chosen[i];
    auto stats = selector.Select(table, pair.a, pair.b, bs);
    auto built = EntropySummary::Build(table, std::move(stats), opts.summary);
    if (!built.ok()) {
      statuses[i] = built.status();
      return;
    }
    entries[i].summary = *built;
    entries[i].pairs = {pair};
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  // Sample companions: stratified on the same top-ranked pairs (the
  // paper's Sec 6.2 baselines), plus an optional uniform sample. Draws are
  // cheap relative to solver runs; keep them serial and deterministic.
  std::vector<std::shared_ptr<WeightedSample>> drawn_samples;
  std::vector<std::vector<ScoredPair>> sample_pairs;
  const size_t ns = std::min(opts.num_stratified_samples, chosen.size());
  for (size_t i = 0; i < ns; ++i) {
    const ScoredPair& pair = chosen[i];
    ASSIGN_OR_RETURN(
        WeightedSample drawn,
        StratifiedSampler::Create(table, pair.a, pair.b,
                                  opts.sample_fraction,
                                  opts.sample_seed + i));
    drawn.name = "Strat(" + table.schema().attribute(pair.a).name + "," +
                 table.schema().attribute(pair.b).name + ")";
    drawn_samples.push_back(std::make_shared<WeightedSample>(std::move(drawn)));
    sample_pairs.push_back({pair});
  }
  if (opts.uniform_sample) {
    ASSIGN_OR_RETURN(WeightedSample drawn,
                     UniformSampler::Create(table, opts.sample_fraction,
                                            opts.sample_seed + ns));
    drawn_samples.push_back(std::make_shared<WeightedSample>(std::move(drawn)));
    sample_pairs.push_back({});
  }
  // Row-group indexes: per-sample counting sorts are independent, so they
  // fan out on the shared pool. Indexed evaluation is bitwise identical
  // to the scan path; skipping this (sample_index = false) only changes
  // route-time latency, never an answer.
  if (opts.sample_index) {
    ParallelFor(drawn_samples.size(), 2, [&](size_t i) {
      drawn_samples[i]->index = SampleIndex::Build(*drawn_samples[i]->rows);
    });
  }
  std::vector<SampleEntry> samples(drawn_samples.size());
  for (size_t i = 0; i < drawn_samples.size(); ++i) {
    samples[i].sample = std::move(drawn_samples[i]);
    samples[i].pairs = std::move(sample_pairs[i]);
  }
  return FromParts(std::move(entries), std::move(samples));
}

Status SourceStore::SaveContents(const std::string& dir, Env* env) const {
  RETURN_NOT_OK(env->CreateDirs(dir));
  std::ostringstream out;
  out << "ENTROPYDB_STORE_V4 mono\n";
  out << "summaries " << entries_.size() << "\n";
  for (size_t k = 0; k < entries_.size(); ++k) {
    const std::string file = "summary_" + std::to_string(k) + ".edb";
    out << "entry " << file << ' ';
    WritePairs(out, entries_[k].pairs);
    out << '\n';
    RETURN_NOT_OK(
        entries_[k].summary->Save((fs::path(dir) / file).string(), env));
  }
  out << "samples " << samples_.size() << "\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    const std::string file = "sample_" + std::to_string(i) + ".eds";
    out << "sample " << file << ' ';
    WritePairs(out, samples_[i].pairs);
    out << '\n';
    RETURN_NOT_OK(SaveSample(*samples_[i].sample,
                             (fs::path(dir) / file).string(), env));
  }
  if (!out.good()) {
    return Status::Internal("manifest serialization failure in " + dir);
  }
  // The MANIFEST goes last: its presence certifies every file it names was
  // already written and synced. Then sync the directory so the entries
  // themselves are durable.
  RETURN_NOT_OK(WriteChecksummedFile(
      env, (fs::path(dir) / "MANIFEST").string(), out.str()));
  return env->SyncDir(dir);
}

Status SourceStore::Save(const std::string& dir, Env* env) const {
  const std::string stage = StagingDirFor(dir);
  Status s = SaveContents(stage, env);
  if (s.ok()) s = env->PublishDir(stage, dir);
  if (!s.ok()) env->RemoveAll(stage).ok();  // best-effort cleanup
  return s;
}

Result<std::shared_ptr<SourceStore>> SourceStore::Load(
    const std::string& dir, SummaryOptions opts, Env* env) {
  RemoveStaleStagingDirs(env, dir);
  const std::string manifest_path = (fs::path(dir) / "MANIFEST").string();
  bool had_footer = false;
  ASSIGN_OR_RETURN(std::string payload,
                   ReadChecksummedFile(env, manifest_path,
                                       opts.verify_checksums, &had_footer));
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token) ||
      (token != "ENTROPYDB_STORE_V1" && token != "ENTROPYDB_STORE_V2" &&
       token != "ENTROPYDB_STORE_V4")) {
    return Status::Corruption("bad store manifest header in " + dir);
  }
  if (token == "ENTROPYDB_STORE_V4") {
    std::string kind;
    if (!(in >> kind) || kind != "mono") {
      return Status::InvalidArgument(
          "not a mono store manifest in " + dir +
          " (open sharded stores through EntropyEngine)");
    }
    if (!had_footer) {
      return Status::Corruption("missing checksum footer in " +
                                manifest_path);
    }
  } else if (!had_footer) {
    std::fprintf(stderr,
                 "entropydb: warning: %s has no checksum footer "
                 "(legacy format, loaded unverified)\n",
                 manifest_path.c_str());
  }
  const bool v2 = token != "ENTROPYDB_STORE_V1";
  size_t k = 0;
  if (!(in >> token >> k) || token != "summaries" || k == 0) {
    return Status::Corruption("bad summaries record in " + dir);
  }
  std::vector<std::string> files(k);
  std::vector<StoreEntry> entries(k);
  for (size_t i = 0; i < k; ++i) {
    if (!(in >> token >> files[i]) || token != "entry") {
      return Status::Corruption("bad store entry record in " + dir);
    }
    Status ps = ReadPairs(in, dir, &entries[i].pairs);
    if (!ps.ok()) return ps;
  }

  // v2 appends the samples section; a v1 (PR 2-era) manifest simply ends
  // after the summary entries.
  size_t ns = 0;
  std::vector<std::string> sample_files;
  std::vector<SampleEntry> samples;
  if (v2) {
    if (!(in >> token >> ns) || token != "samples") {
      return Status::Corruption("bad samples record in " + dir);
    }
    sample_files.resize(ns);
    samples.resize(ns);
    for (size_t i = 0; i < ns; ++i) {
      if (!(in >> token >> sample_files[i]) || token != "sample") {
        return Status::Corruption("bad store sample record in " + dir);
      }
      Status ps = ReadPairs(in, dir, &samples[i].pairs);
      if (!ps.ok()) return ps;
    }
  }

  // Source loads are independent (each summary rebuilds its own compressed
  // polynomial and warms its own pool), so fan them all out.
  std::vector<Status> statuses(k + ns, Status::OK());
  ParallelFor(k + ns, 2, [&](size_t i) {
    if (i < k) {
      auto loaded = EntropySummary::Load((fs::path(dir) / files[i]).string(),
                                         opts, env);
      if (!loaded.ok()) {
        statuses[i] = loaded.status();
        return;
      }
      entries[i].summary = *loaded;
    } else {
      auto loaded = LoadSample((fs::path(dir) / sample_files[i - k]).string(),
                               env, opts.verify_checksums);
      if (!loaded.ok()) {
        statuses[i] = loaded.status();
        return;
      }
      samples[i - k].sample = std::make_shared<WeightedSample>(
          std::move(loaded).ValueOrDie());
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  auto store = FromParts(std::move(entries), std::move(samples));
  if (!store.ok()) {
    return Status::Corruption("inconsistent store in " + dir + ": " +
                              store.status().message());
  }
  // Pair metadata must reference real attributes.
  const size_t m = (*store)->num_attributes();
  auto check_pairs = [&](const std::vector<ScoredPair>& pairs) {
    for (const ScoredPair& p : pairs) {
      if (p.a >= m || p.b >= m) return false;
    }
    return true;
  };
  for (size_t i = 0; i < (*store)->size(); ++i) {
    if (!check_pairs((*store)->entry(i).pairs)) {
      return Status::Corruption("pair attribute out of range in " + dir);
    }
  }
  for (size_t i = 0; i < (*store)->num_samples(); ++i) {
    if (!check_pairs((*store)->sample_entry(i).pairs)) {
      return Status::Corruption("pair attribute out of range in " + dir);
    }
  }
  return store;
}

}  // namespace entropydb
