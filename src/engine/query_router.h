#ifndef ENTROPYDB_ENGINE_QUERY_ROUTER_H_
#define ENTROPYDB_ENGINE_QUERY_ROUTER_H_

#include <limits>
#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/source_store.h"
#include "maxent/answerer.h"
#include "query/counting_query.h"

namespace entropydb {

/// Why a query landed on the source it did — surfaced by the query tool's
/// --store mode and asserted by the routing tests.
struct RouteDecision {
  /// Chosen summary entry; when `from_sample` is true this is the summary
  /// RUNNER-UP the winning sample was compared against.
  size_t index = 0;
  /// Modeled pairs of the chosen entry fully inside the query's constrained
  /// attribute set.
  size_t covered_pairs = 0;
  /// Entries that tied on maximal coverage (candidates the variance rule
  /// then decided between).
  size_t candidates = 1;
  /// True when NO entry covered a pair: summary routing fell back to the
  /// widest summary.
  bool fallback = false;
  /// The chosen source's estimate variance (the routing objective).
  double expected_variance = 0.0;

  // -- Hybrid stage (summary vs. sample), see docs/ESTIMATORS.md ---------
  // COUNT routing always fills these; aggregate routing (AnswerSum) fills
  // them with the FILTER COUNT's variances — the shared objective — and
  // only when the store holds samples (they keep their defaults when the
  // hybrid stage is skipped).
  /// True when a sample source won the variance comparison: the answer
  /// came from store sample `sample_index`.
  bool from_sample = false;
  /// Winning sample (valid only when `from_sample`).
  size_t sample_index = 0;
  /// The best summary candidate's expected variance (stage-2 winner).
  double summary_variance = 0.0;
  /// The best sample's expected variance; +infinity when the store holds
  /// no samples (the comparison then never picks a sample).
  double sample_variance = std::numeric_limits<double>::infinity();

  // -- Shard pruning (engine/sharded_store.h, storage/zone_map.h) --------
  // Only sharded answering fills these. Per-shard decision slots carry
  // `pruned`; the facade-level decision EntropyEngine returns carries the
  // aggregate counters.
  /// True when the shard's zone map proved the query cannot match: the
  /// shard was skipped and contributed an exact {0, 0} to the merge.
  bool pruned = false;
  /// The attribute whose zone map proved the miss (valid when `pruned`).
  AttrId pruned_attr = 0;
  /// Shards skipped / actually answered for this query (facade-level
  /// aggregate; both 0 on non-sharded paths).
  size_t shards_pruned = 0;
  size_t shards_scanned = 0;
};

/// \brief Routes each query to the store source — maxent summary or
/// weighted sample — expected to answer it best, and fans batched
/// workloads across the pool.
///
/// Routing rule (see docs/ESTIMATORS.md and docs/ARCHITECTURE.md):
///  1. Coverage: an entry covers a query through every modeled attribute
///     pair whose BOTH attributes the query constrains — those are the
///     correlations the estimate actually exercises. Keep the summaries
///     with maximal (non-zero) coverage.
///  2. Summary variance: among tied candidates, answer from each and keep
///     the estimate with the lowest Binomial variance n p (1 - p). A
///     summary that models the queried correlation concentrates the mass
///     estimate (small p for rare combinations), so lower variance tracks
///     the better-informed model. When no entry covers any pair (1-D-only
///     territory, where every summary shares the same exact marginals),
///     the widest summary is the candidate.
///  3. Hybrid: answer from every sample companion as well and compare the
///     best sample's Horvitz-Thompson variance against the stage-2
///     winner's; the overall lowest variance serves the query. A sample
///     that saw no matching row reports the finite miss floor
///     w_max (w_max - 1) (never a confident zero), which routes rare
///     slices the sample missed back to a summary.
///
/// The routed answer IS the chosen source's own answer — bit-for-bit what
/// that summary's QueryAnswerer or that sample's SampleEstimator returns —
/// so routing never perturbs estimates. Stateless over an immutable store:
/// all entry points are safe to call concurrently.
class QueryRouter {
 public:
  explicit QueryRouter(std::shared_ptr<const SourceStore> store)
      : store_(std::move(store)) {}

  const SourceStore& store() const { return *store_; }

  /// Max-coverage candidate entries for a constrained-attribute set
  /// (`constrained[a]` != 0 when attribute `a` carries a predicate).
  /// `covered` gets the pair count each returned candidate achieves; 0
  /// means nothing covers and the result is just the widest entry.
  std::vector<size_t> CoveringEntries(const std::vector<uint8_t>& constrained,
                                      size_t* covered) const;

  /// Stage-3 helper: the sample companion with the lowest expected COUNT
  /// variance for `q` (first wins ties, keeping routing deterministic).
  /// Returns false — leaving the outputs untouched — when the store holds
  /// no samples or none matches the query's arity (an arity mismatch is
  /// an expected probe miss, not a fault). Any OTHER per-sample error —
  /// e.g. a corrupt companion surfacing at answer time — propagates as a
  /// Status instead of silently dropping the sample from routing.
  Result<bool> BestSample(const CountingQuery& q, size_t* index,
                          QueryEstimate* est) const;

  /// Runs stage 3 in full: the best sample challenges the stage-2 summary
  /// winner's filter-count estimate `summary_cnt`. Fills the decision's
  /// hybrid fields (when non-null) and the winner outputs, and returns
  /// true when the sample takes the query (strictly lower variance);
  /// non-arity sample errors propagate (see BestSample). The ONE
  /// comparison both COUNT and aggregate routing share — change the rule
  /// here and both paths move together.
  Result<bool> HybridChallenge(const CountingQuery& q,
                               const QueryEstimate& summary_cnt,
                               RouteDecision* decision, size_t* sample_index,
                               QueryEstimate* sample_est) const;

  /// Routes and answers one counting query across all sources.
  Result<QueryEstimate> Answer(const CountingQuery& q,
                               RouteDecision* decision = nullptr) const;

  /// Routes and answers a whole workload, fanned across the shared thread
  /// pool; slot i of the result (and of `decisions`) corresponds to qs[i].
  /// Answers are identical to calling Answer per query serially.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const CountingQuery* qs, size_t count,
      std::vector<RouteDecision>* decisions = nullptr) const;
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

 private:
  std::shared_ptr<const SourceStore> store_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_QUERY_ROUTER_H_
