#ifndef ENTROPYDB_ENGINE_QUERY_ROUTER_H_
#define ENTROPYDB_ENGINE_QUERY_ROUTER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "engine/summary_store.h"
#include "maxent/answerer.h"
#include "query/counting_query.h"

namespace entropydb {

/// Why a query landed on the summary it did — surfaced by the query tool's
/// --store mode and asserted by the routing tests.
struct RouteDecision {
  /// Chosen store entry.
  size_t index = 0;
  /// Modeled pairs of the chosen entry fully inside the query's constrained
  /// attribute set.
  size_t covered_pairs = 0;
  /// Entries that tied on maximal coverage (candidates the variance rule
  /// then decided between).
  size_t candidates = 1;
  /// True when NO entry covered a pair: routed to the widest summary.
  bool fallback = false;
  /// The chosen estimate's variance (the routing objective).
  double expected_variance = 0.0;
};

/// \brief Routes each query to the store summary expected to answer it
/// best, and fans batched workloads across the pool.
///
/// Routing rule (see docs/ARCHITECTURE.md):
///  1. Coverage: an entry covers a query through every modeled attribute
///     pair whose BOTH attributes the query constrains — those are the
///     correlations the estimate actually exercises. Keep the entries with
///     maximal (non-zero) coverage.
///  2. Variance: among tied candidates, answer from each and keep the
///     estimate with the lowest Binomial variance n p (1 - p). A summary
///     that models the queried correlation concentrates the mass estimate
///     (small p for rare combinations), so lower variance tracks the
///     better-informed model.
///  3. Fallback: when no entry covers any pair (1-D-only territory, where
///     every summary shares the same exact marginals), use the widest
///     summary.
///
/// The routed answer IS the chosen summary's own answer — bit-for-bit what
/// QueryAnswerer on that summary returns — so routing never perturbs
/// estimates. Stateless over an immutable store: all entry points are
/// safe to call concurrently.
class QueryRouter {
 public:
  explicit QueryRouter(std::shared_ptr<const SummaryStore> store)
      : store_(std::move(store)) {}

  const SummaryStore& store() const { return *store_; }

  /// Max-coverage candidate entries for a constrained-attribute set
  /// (`constrained[a]` != 0 when attribute `a` carries a predicate).
  /// `covered` gets the pair count each returned candidate achieves; 0
  /// means nothing covers and the result is just the widest entry.
  std::vector<size_t> CoveringEntries(const std::vector<uint8_t>& constrained,
                                      size_t* covered) const;

  /// Routes and answers one counting query.
  Result<QueryEstimate> Answer(const CountingQuery& q,
                               RouteDecision* decision = nullptr) const;

  /// Routes and answers a whole workload, fanned across the shared thread
  /// pool; slot i of the result (and of `decisions`) corresponds to qs[i].
  /// Answers are identical to calling Answer per query serially.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const CountingQuery* qs, size_t count,
      std::vector<RouteDecision>* decisions = nullptr) const;
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

 private:
  std::shared_ptr<const SummaryStore> store_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_QUERY_ROUTER_H_
