#ifndef ENTROPYDB_ENGINE_QUERY_ROUTER_H_
#define ENTROPYDB_ENGINE_QUERY_ROUTER_H_

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "engine/source_store.h"
#include "maxent/answerer.h"
#include "query/aggregate.h"
#include "query/counting_query.h"

namespace entropydb {

/// \brief Routes each query to the store source — maxent summary or
/// weighted sample — expected to answer it best, and fans batched
/// workloads across the pool.
///
/// Routing rule (see docs/ESTIMATORS.md and docs/ARCHITECTURE.md):
///  1. Coverage: an entry covers a query through every modeled attribute
///     pair whose BOTH attributes the query constrains — those are the
///     correlations the estimate actually exercises. Keep the summaries
///     with maximal (non-zero) coverage.
///  2. Summary variance: among tied candidates, answer from each and keep
///     the estimate with the lowest Binomial variance n p (1 - p). A
///     summary that models the queried correlation concentrates the mass
///     estimate (small p for rare combinations), so lower variance tracks
///     the better-informed model. When no entry covers any pair (1-D-only
///     territory, where every summary shares the same exact marginals),
///     the widest summary is the candidate.
///  3. Hybrid: answer from every sample companion as well and compare the
///     best sample's Horvitz-Thompson variance against the stage-2
///     winner's; the overall lowest variance serves the query. A sample
///     that saw no matching row reports the finite miss floor
///     w_max (w_max - 1) (never a confident zero), which routes rare
///     slices the sample missed back to a summary.
///
/// The unified Answer(AggregateQuery) runs the same pipeline per kind:
/// COUNT routes the full three stages (and is bitwise the counting-path
/// answer), SUM routes stages 1-2 on the filter PLUS the aggregated
/// attribute and challenges hybrid on the filter count's variance (the
/// shared objective), AVG routes summary-only (samples have no batched
/// ratio path). QUANTILE/TOPK/JOIN derive at the engine facade from
/// group-by marginals — kNotSupported here.
///
/// The routed answer IS the chosen source's own answer — bit-for-bit what
/// that summary's QueryAnswerer or that sample's SampleEstimator returns —
/// so routing never perturbs estimates. Stateless over an immutable store:
/// all entry points are safe to call concurrently.
class QueryRouter {
 public:
  explicit QueryRouter(std::shared_ptr<const SourceStore> store)
      : store_(std::move(store)) {}

  const SourceStore& store() const { return *store_; }

  /// Max-coverage candidate entries for a constrained-attribute set
  /// (`constrained[a]` != 0 when attribute `a` carries a predicate).
  /// `covered` gets the pair count each returned candidate achieves; 0
  /// means nothing covers and the result is just the widest entry.
  std::vector<size_t> CoveringEntries(const std::vector<uint8_t>& constrained,
                                      size_t* covered) const;

  /// Stages 1-2 for aggregate routing: the serving summary ENTRY for a
  /// filter whose effective constrained set also includes `extra_attrs`
  /// (aggregate / group-by attributes — the per-value split exercises
  /// their correlations too). Coverage ties break on the filter COUNT's
  /// variance (running the aggregate itself per candidate would cost a
  /// batched derivative pass each); when the tie-break evaluated the
  /// winner's filter count it is handed back through `filter_count` so
  /// hybrid aggregate routing does not pay the masked evaluation twice.
  /// Resets and fills the decision's stage-1/2 fields. An arity-mismatched
  /// query routes to the widest entry — the summary's own validation then
  /// surfaces the error when answering.
  size_t RouteEntry(const CountingQuery& q,
                    const std::vector<AttrId>& extra_attrs,
                    RouteDecision* decision,
                    std::optional<QueryEstimate>* filter_count = nullptr) const;

  /// Stage-3 helper: the sample companion with the lowest expected COUNT
  /// variance for `q` (first wins ties, keeping routing deterministic).
  /// Returns false — leaving the outputs untouched — when the store holds
  /// no samples or none matches the query's arity (an arity mismatch is
  /// an expected probe miss, not a fault). Any OTHER per-sample error —
  /// e.g. a corrupt companion surfacing at answer time — propagates as a
  /// Status instead of silently dropping the sample from routing.
  Result<bool> BestSample(const CountingQuery& q, size_t* index,
                          QueryEstimate* est) const;

  /// Runs stage 3 in full: the best sample challenges the stage-2 summary
  /// winner's filter-count estimate `summary_cnt`. Fills the decision's
  /// hybrid fields (when non-null) and the winner outputs, and returns
  /// true when the sample takes the query (strictly lower variance);
  /// non-arity sample errors propagate (see BestSample). The ONE
  /// comparison both COUNT and aggregate routing share — change the rule
  /// here and both paths move together.
  Result<bool> HybridChallenge(const CountingQuery& q,
                               const QueryEstimate& summary_cnt,
                               RouteDecision* decision, size_t* sample_index,
                               QueryEstimate* sample_est) const;

  /// Routes and answers one counting query across all sources — the
  /// primitive the batcher and the COUNT aggregate share.
  Result<QueryEstimate> Answer(const CountingQuery& q,
                               RouteDecision* decision = nullptr) const;

  /// The unified aggregate surface (COUNT/SUM/AVG; see the class comment
  /// for the per-kind pipeline). The result's `route` always carries the
  /// decision; `decision` (optional) receives the same value.
  Result<QueryResult> Answer(const AggregateQuery& q,
                             RouteDecision* decision = nullptr) const;

  /// Routes and answers a whole workload, fanned across the shared thread
  /// pool; slot i of the result (and of `decisions`) corresponds to qs[i].
  /// Answers are identical to calling Answer per query serially.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const CountingQuery* qs, size_t count,
      std::vector<RouteDecision>* decisions = nullptr) const;
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

 private:
  std::shared_ptr<const SourceStore> store_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_QUERY_ROUTER_H_
