#ifndef ENTROPYDB_ENGINE_ENGINE_H_
#define ENTROPYDB_ENGINE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_router.h"
#include "engine/source_store.h"
#include "maxent/summary.h"
#include "query/aggregate.h"

namespace entropydb {

class ShardedStore;

/// \brief Monotonic engine-level counters, snapshot by
/// EntropyEngine::stats().
///
/// Feeds the server's STATS command (docs/SERVING.md). Increments are
/// relaxed atomics on the answer paths, so concurrent answering never
/// serializes on bookkeeping; a snapshot is therefore approximate across
/// in-flight queries, which is all an operations counter needs.
struct EngineStats {
  /// Single-query Answer calls (any aggregate kind, joins, group-bys).
  uint64_t queries = 0;
  /// AnswerAll invocations (one per micro-batch).
  uint64_t batches = 0;
  /// Queries answered inside those batches.
  uint64_t batched_queries = 0;
};

/// \brief The serving facade: one query surface over a single
/// EntropySummary, a routed SourceStore (summaries + sample companions),
/// or a ShardedStore (S row-shards, each a full SourceStore, answered by
/// fan-out + additive merge — see engine/sharded_store.h).
///
/// Tools, examples, and benchmarks talk to this instead of hand-wiring a
/// summary, so switching a deployment from one summary file to a
/// multi-source store directory is a flag change:
///
///   auto engine = EntropyEngine::Open(path);   // file or store directory
///   auto res = (*engine)->Answer(AggregateQuery::Count(query));
///
/// Open sniffs a directory's MANIFEST header and dispatches transparently:
/// a v1/v2 manifest loads as a monolithic SourceStore, a v3 manifest as a
/// ShardedStore — callers never branch on the layout. Sharded engines fan
/// each COUNT/SUM/AVG out to every shard (the best source is picked PER
/// SHARD by that shard's router) and merge the per-shard moments; point
/// estimates, variances, and the SUM/COUNT covariance are additive across
/// disjoint row partitions, so the merged AVG keeps the full delta-method
/// variance.
///
/// The ONE query entry point is Answer(AggregateQuery): COUNT and SUM
/// route across summaries AND samples per QueryRouter's hybrid rules
/// (coverage -> summary variance -> summary-vs-sample variance; see
/// docs/ESTIMATORS.md); AVG and the group-bys are summary-only (samples
/// have no batched-derivative path); QUANTILE and TOPK derive here at the
/// facade from the routed group-by marginal (maxent/quantile.h), so they
/// work uniformly over single summaries, stores, and sharded stores. The
/// JOIN kinds fuse TWO engines' models on a shared attribute — see
/// AnswerJoin and maxent/join_fusion.h. All entry points are safe to call
/// concurrently; per-summary throughput scales on the answerer's
/// workspace pool.
class EntropyEngine {
 public:
  /// Wraps a single summary (no routing).
  static std::shared_ptr<EntropyEngine> FromSummary(
      std::shared_ptr<EntropySummary> summary);
  /// Wraps a store behind a hybrid router.
  static std::shared_ptr<EntropyEngine> FromStore(
      std::shared_ptr<SourceStore> store);
  /// Wraps a sharded store behind per-shard routers + additive merging.
  static std::shared_ptr<EntropyEngine> FromSharded(
      std::shared_ptr<ShardedStore> sharded);
  /// Opens a persisted engine: a directory loads as a SourceStore
  /// (MANIFEST v1/v2/v4-mono) or a ShardedStore (MANIFEST v3/v4-sharded),
  /// a file as a single summary. A *versioned root* (a directory holding a
  /// CURRENT pointer — see storage/version_set.h) resolves to its current
  /// version's store directory first, so callers point at the root and
  /// transparently read whatever version is live; to time-travel, open a
  /// retained "root/v<id>" directly. Checksums are verified unless
  /// `opts.verify_checksums` is off; all I/O goes through `env`.
  static Result<std::shared_ptr<EntropyEngine>> Open(const std::string& path,
                                                     SummaryOptions opts = {},
                                                     Env* env = Env::Default());

  /// True when this engine routes over a store (vs. one summary).
  bool is_store() const { return store_ != nullptr || sharded_ != nullptr; }
  /// True when this engine fans out over a sharded store.
  bool is_sharded() const { return sharded_ != nullptr; }
  /// Number of row-shards (1 for monolithic engines).
  size_t num_shards() const;
  /// Number of summary sources (summed across shards when sharded).
  size_t num_summaries() const;
  /// Number of sample sources (summed across shards when sharded).
  size_t num_samples() const;
  /// The backing monolithic store; null for single-summary AND sharded
  /// engines (use sharded() for the latter).
  const SourceStore* store() const { return store_.get(); }
  /// The backing sharded store; null unless is_sharded().
  const ShardedStore* sharded() const { return sharded_.get(); }
  /// The single summary, or the (first shard's) widest fallback entry.
  const EntropySummary& primary() const { return *primary_; }

  /// Attribute names shared by every source.
  const std::vector<std::string>& attr_names() const {
    return primary_->attr_names();
  }
  /// Active-domain descriptors shared by every source (may be empty for
  /// summaries built from a bare registry).
  const std::vector<Domain>& domains() const { return primary_->domains(); }
  bool has_domains() const { return primary_->has_domains(); }
  /// Relation cardinality n (the TOTAL across shards when sharded).
  double n() const;
  /// Relation arity m.
  size_t num_attributes() const { return primary_->num_attributes(); }

  /// COUNT(*) — the routed counting primitive the batcher fans out on
  /// (bitwise the Answer(AggregateQuery::Count(q)) estimate).
  Result<QueryEstimate> Answer(const CountingQuery& q,
                               RouteDecision* decision = nullptr) const;

  /// The unified aggregate surface: COUNT/SUM/AVG routed per the class
  /// comment, QUANTILE/TOPK derived from the routed group-by marginal.
  /// JOIN kinds need a right-side engine — use AnswerJoin; here they are
  /// kInvalidArgument. The result's `route` always carries the decision
  /// (facade-level pruning counters included when sharded); `decision`
  /// (optional) receives the same value.
  Result<QueryResult> Answer(const AggregateQuery& q,
                             RouteDecision* decision = nullptr) const;

  /// Fused-join estimates (kJoinCount / kJoinSum): this engine serves the
  /// LEFT relation (q.where, q.join_attr, and for JOIN_SUM q.agg_attr /
  /// q.weights), `right` the right relation (q.right_where,
  /// q.right_join_attr). Each side contributes its filtered join-attribute
  /// marginal from its own routed model; the fusion is the first-order
  /// delta estimate of maxent/join_fusion.h. The two join attributes'
  /// domains must agree in size (codes are matched positionally — fuse
  /// relations encoded against the same dictionary).
  Result<QueryResult> AnswerJoin(const AggregateQuery& q,
                                 const EntropyEngine& right,
                                 RouteDecision* decision = nullptr) const;

  /// Batched COUNT(*) workload, fanned across the thread pool; slot i
  /// matches qs[i] and equals the serial Answer answer.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

  /// Whole-attribute group-by (one batched derivative pass) —
  /// summary-routed.
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;
  /// Point group-by over explicit keys — summary-routed.
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;

  /// Snapshot of the engine-level counters (see EngineStats).
  EngineStats stats() const;

 private:
  EntropyEngine(std::shared_ptr<EntropySummary> summary,
                std::shared_ptr<SourceStore> store,
                std::shared_ptr<ShardedStore> sharded);

  /// Picks the serving summary for a filter + extra constrained attributes
  /// (aggregate / group-by attributes), filling `decision` — the router's
  /// RouteEntry behind the single-summary fallback.
  const EntropySummary& RouteFor(
      const CountingQuery& q, const std::vector<AttrId>& extra_attrs,
      RouteDecision* decision) const;

  /// The routed whole-attribute marginal the group-by, quantile, and join
  /// surfaces share (dispatches sharded / store / single-summary).
  Result<std::vector<QueryEstimate>> GroupByMarginal(
      AttrId a, const CountingQuery& base, RouteDecision* decision) const;

  std::shared_ptr<EntropySummary> primary_;
  std::shared_ptr<SourceStore> store_;
  std::shared_ptr<ShardedStore> sharded_;
  std::unique_ptr<QueryRouter> router_;

  // Answer methods are const; the counters are observability, not state.
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> batched_queries_{0};
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_ENGINE_H_
