#ifndef ENTROPYDB_ENGINE_ENGINE_H_
#define ENTROPYDB_ENGINE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_router.h"
#include "engine/source_store.h"
#include "maxent/summary.h"

namespace entropydb {

class ShardedStore;

/// \brief Monotonic engine-level counters, snapshot by
/// EntropyEngine::stats().
///
/// Feeds the server's STATS command (docs/SERVING.md). Increments are
/// relaxed atomics on the answer paths, so concurrent answering never
/// serializes on bookkeeping; a snapshot is therefore approximate across
/// in-flight queries, which is all an operations counter needs.
struct EngineStats {
  /// Single-query Answer* calls (count, sum, avg, group-by).
  uint64_t queries = 0;
  /// AnswerAll invocations (one per micro-batch).
  uint64_t batches = 0;
  /// Queries answered inside those batches.
  uint64_t batched_queries = 0;
};

/// \brief The serving facade: one query surface over a single
/// EntropySummary, a routed SourceStore (summaries + sample companions),
/// or a ShardedStore (S row-shards, each a full SourceStore, answered by
/// fan-out + additive merge — see engine/sharded_store.h).
///
/// Tools, examples, and benchmarks talk to this instead of hand-wiring a
/// summary, so switching a deployment from one summary file to a
/// multi-source store directory is a flag change:
///
///   auto engine = EntropyEngine::Open(path);   // file or store directory
///   auto est = (*engine)->AnswerCount(query);  // routed when store-backed
///
/// Open sniffs a directory's MANIFEST header and dispatches transparently:
/// a v1/v2 manifest loads as a monolithic SourceStore, a v3 manifest as a
/// ShardedStore — callers never branch on the layout. Sharded engines fan
/// each COUNT/SUM out to every shard (the best source is picked PER SHARD
/// by that shard's router) and merge the per-shard estimates; point
/// estimates and variances are additive across disjoint row partitions.
///
/// Store-backed engines route each query per QueryRouter's hybrid rules
/// (coverage -> summary variance -> summary-vs-sample variance; see
/// docs/ESTIMATORS.md) and report the decision on request; single-summary
/// engines answer directly (the decision then names entry 0). COUNT and
/// SUM route across summaries AND samples; AVG and the group-bys are
/// summary-only (samples have no batched-derivative path), routing on the
/// filter's constrained attributes PLUS the aggregated attribute, since
/// the per-value split exercises that attribute's correlations too;
/// coverage ties break on the filter count's variance (running the
/// aggregate itself per candidate would cost a derivative pass each).
/// All entry points are safe to call concurrently; per-summary throughput
/// scales on the answerer's workspace pool.
class EntropyEngine {
 public:
  /// Wraps a single summary (no routing).
  static std::shared_ptr<EntropyEngine> FromSummary(
      std::shared_ptr<EntropySummary> summary);
  /// Wraps a store behind a hybrid router.
  static std::shared_ptr<EntropyEngine> FromStore(
      std::shared_ptr<SourceStore> store);
  /// Wraps a sharded store behind per-shard routers + additive merging.
  static std::shared_ptr<EntropyEngine> FromSharded(
      std::shared_ptr<ShardedStore> sharded);
  /// Opens a persisted engine: a directory loads as a SourceStore
  /// (MANIFEST v1/v2/v4-mono) or a ShardedStore (MANIFEST v3/v4-sharded),
  /// a file as a single summary. A *versioned root* (a directory holding a
  /// CURRENT pointer — see storage/version_set.h) resolves to its current
  /// version's store directory first, so callers point at the root and
  /// transparently read whatever version is live; to time-travel, open a
  /// retained "root/v<id>" directly. Checksums are verified unless
  /// `opts.verify_checksums` is off; all I/O goes through `env`.
  static Result<std::shared_ptr<EntropyEngine>> Open(const std::string& path,
                                                     SummaryOptions opts = {},
                                                     Env* env = Env::Default());

  /// True when this engine routes over a store (vs. one summary).
  bool is_store() const { return store_ != nullptr || sharded_ != nullptr; }
  /// True when this engine fans out over a sharded store.
  bool is_sharded() const { return sharded_ != nullptr; }
  /// Number of row-shards (1 for monolithic engines).
  size_t num_shards() const;
  /// Number of summary sources (summed across shards when sharded).
  size_t num_summaries() const;
  /// Number of sample sources (summed across shards when sharded).
  size_t num_samples() const;
  /// The backing monolithic store; null for single-summary AND sharded
  /// engines (use sharded() for the latter).
  const SourceStore* store() const { return store_.get(); }
  /// The backing sharded store; null unless is_sharded().
  const ShardedStore* sharded() const { return sharded_.get(); }
  /// The single summary, or the (first shard's) widest fallback entry.
  const EntropySummary& primary() const { return *primary_; }

  /// Attribute names shared by every source.
  const std::vector<std::string>& attr_names() const {
    return primary_->attr_names();
  }
  /// Active-domain descriptors shared by every source (may be empty for
  /// summaries built from a bare registry).
  const std::vector<Domain>& domains() const { return primary_->domains(); }
  bool has_domains() const { return primary_->has_domains(); }
  /// Relation cardinality n (the TOTAL across shards when sharded).
  double n() const;
  /// Relation arity m.
  size_t num_attributes() const { return primary_->num_attributes(); }

  /// COUNT(*) — routed across summaries and samples when store-backed.
  Result<QueryEstimate> AnswerCount(const CountingQuery& q,
                                    RouteDecision* decision = nullptr) const;
  /// Batched COUNT(*) workload, fanned across the thread pool; slot i
  /// matches qs[i] and equals the serial AnswerCount answer.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

  /// SUM of a per-value weight over attribute `a` — routed across
  /// summaries and samples (the hybrid comparison uses the filter count's
  /// variance as its objective).
  Result<QueryEstimate> AnswerSum(AttrId a, const std::vector<double>& weights,
                                  const CountingQuery& q,
                                  RouteDecision* decision = nullptr) const;
  /// AVG of a per-value weight over attribute `a` (delta-method ratio
  /// variance) — summary-routed.
  Result<QueryEstimate> AnswerAvg(AttrId a, const std::vector<double>& weights,
                                  const CountingQuery& q,
                                  RouteDecision* decision = nullptr) const;
  /// Whole-attribute group-by (one batched derivative pass) —
  /// summary-routed.
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;
  /// Point group-by over explicit keys — summary-routed.
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;

  /// Snapshot of the engine-level counters (see EngineStats).
  EngineStats stats() const;

 private:
  EntropyEngine(std::shared_ptr<EntropySummary> summary,
                std::shared_ptr<SourceStore> store,
                std::shared_ptr<ShardedStore> sharded);

  /// Picks the serving summary for a filter + extra constrained attributes
  /// (aggregate / group-by attributes), filling `decision`. When the
  /// tie-break already evaluated the winner's filter count, it is handed
  /// back through `filter_count` (if non-null) so hybrid aggregate routing
  /// does not pay the masked evaluation twice.
  const EntropySummary& RouteFor(
      const CountingQuery& q, const std::vector<AttrId>& extra_attrs,
      RouteDecision* decision,
      std::optional<QueryEstimate>* filter_count = nullptr) const;

  std::shared_ptr<EntropySummary> primary_;
  std::shared_ptr<SourceStore> store_;
  std::shared_ptr<ShardedStore> sharded_;
  std::unique_ptr<QueryRouter> router_;

  // Answer methods are const; the counters are observability, not state.
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> batched_queries_{0};
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_ENGINE_H_
