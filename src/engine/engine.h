#ifndef ENTROPYDB_ENGINE_ENGINE_H_
#define ENTROPYDB_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_router.h"
#include "engine/summary_store.h"
#include "maxent/summary.h"

namespace entropydb {

/// \brief The serving facade: one query surface over either a single
/// EntropySummary or a routed SummaryStore.
///
/// Tools, examples, and benchmarks talk to this instead of hand-wiring a
/// summary, so switching a deployment from one summary file to a
/// multi-summary store directory is a flag change:
///
///   auto engine = EntropyEngine::Open(path);   // file or store directory
///   auto est = (*engine)->AnswerCount(query);  // routed when store-backed
///
/// Store-backed engines route each query per QueryRouter's rules and report
/// the decision on request; single-summary engines answer directly (the
/// decision then names entry 0). Aggregates (SUM / AVG / group-by) route on
/// the filter's constrained attributes PLUS the aggregated attribute,
/// since the per-value split exercises that attribute's correlations too;
/// coverage ties break on the filter count's variance (running the
/// aggregate itself per candidate would cost a derivative pass each).
/// All entry points are safe to call concurrently; per-summary throughput
/// scales on the answerer's workspace pool.
class EntropyEngine {
 public:
  /// Wraps a single summary (no routing).
  static std::shared_ptr<EntropyEngine> FromSummary(
      std::shared_ptr<EntropySummary> summary);
  /// Wraps a store behind a router.
  static std::shared_ptr<EntropyEngine> FromStore(
      std::shared_ptr<SummaryStore> store);
  /// Opens a persisted engine: a directory loads as a SummaryStore, a file
  /// as a single summary.
  static Result<std::shared_ptr<EntropyEngine>> Open(const std::string& path,
                                                     SummaryOptions opts = {});

  bool is_store() const { return store_ != nullptr; }
  size_t num_summaries() const { return store_ ? store_->size() : 1; }
  /// Null for single-summary engines.
  const SummaryStore* store() const { return store_.get(); }
  /// The single summary, or the store's widest (fallback) entry.
  const EntropySummary& primary() const { return *primary_; }

  const std::vector<std::string>& attr_names() const {
    return primary_->attr_names();
  }
  const std::vector<Domain>& domains() const { return primary_->domains(); }
  bool has_domains() const { return primary_->has_domains(); }
  double n() const { return primary_->n(); }
  size_t num_attributes() const { return primary_->num_attributes(); }

  /// COUNT(*) — routed when store-backed.
  Result<QueryEstimate> AnswerCount(const CountingQuery& q,
                                    RouteDecision* decision = nullptr) const;
  /// Batched COUNT(*) workload, fanned across the thread pool.
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<RouteDecision>* decisions = nullptr) const;

  /// SUM / AVG of a per-value weight over attribute `a`.
  Result<QueryEstimate> AnswerSum(AttrId a, const std::vector<double>& weights,
                                  const CountingQuery& q,
                                  RouteDecision* decision = nullptr) const;
  Result<QueryEstimate> AnswerAvg(AttrId a, const std::vector<double>& weights,
                                  const CountingQuery& q,
                                  RouteDecision* decision = nullptr) const;
  /// Whole-attribute group-by (one batched derivative pass).
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;
  /// Point group-by over explicit keys.
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys, const CountingQuery& base,
      RouteDecision* decision = nullptr) const;

 private:
  EntropyEngine(std::shared_ptr<EntropySummary> summary,
                std::shared_ptr<SummaryStore> store);

  /// Picks the serving summary for a filter + extra constrained attributes
  /// (aggregate / group-by attributes), filling `decision`.
  const EntropySummary& RouteFor(const CountingQuery& q,
                                 const std::vector<AttrId>& extra_attrs,
                                 RouteDecision* decision) const;

  std::shared_ptr<EntropySummary> primary_;
  std::shared_ptr<SummaryStore> store_;
  std::unique_ptr<QueryRouter> router_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_ENGINE_H_
