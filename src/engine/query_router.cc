#include "engine/query_router.h"

#include "common/thread_pool.h"

namespace entropydb {

std::vector<size_t> QueryRouter::CoveringEntries(
    const std::vector<uint8_t>& constrained, size_t* covered) const {
  size_t best = 0;
  std::vector<size_t> out;
  for (size_t k = 0; k < store_->size(); ++k) {
    size_t cover = 0;
    for (const ScoredPair& p : store_->entry(k).pairs) {
      if (constrained[p.a] && constrained[p.b]) ++cover;
    }
    if (cover > best) {
      best = cover;
      out.clear();
    }
    if (cover == best && cover > 0) out.push_back(k);
  }
  *covered = best;
  if (out.empty()) out.push_back(store_->widest());
  return out;
}

Result<QueryEstimate> QueryRouter::Answer(const CountingQuery& q,
                                          RouteDecision* decision) const {
  if (q.num_attributes() != store_->num_attributes()) {
    return Status::InvalidArgument("query arity does not match the store");
  }
  std::vector<uint8_t> constrained(q.num_attributes(), 0);
  for (AttrId a = 0; a < q.num_attributes(); ++a) {
    constrained[a] = q.predicate(a).is_any() ? 0 : 1;
  }
  size_t covered = 0;
  std::vector<size_t> candidates = CoveringEntries(constrained, &covered);

  // Among tied candidates, the lowest-variance estimate wins (first wins
  // ties, keeping routing deterministic). The returned estimate is exactly
  // the chosen summary's own answer.
  QueryEstimate best_est;
  size_t best_index = candidates.front();
  bool have = false;
  for (size_t k : candidates) {
    ASSIGN_OR_RETURN(QueryEstimate est, store_->summary(k).AnswerCount(q));
    if (!have || est.variance < best_est.variance) {
      best_est = est;
      best_index = k;
      have = true;
    }
  }
  if (decision != nullptr) {
    decision->index = best_index;
    decision->covered_pairs = covered;
    decision->candidates = candidates.size();
    decision->fallback = covered == 0;
    decision->expected_variance = best_est.variance;
  }
  return best_est;
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const CountingQuery* qs, size_t count,
    std::vector<RouteDecision>* decisions) const {
  std::vector<QueryEstimate> out(count);
  if (decisions != nullptr) decisions->assign(count, RouteDecision{});
  std::vector<Status> statuses(count, Status::OK());
  // Disjoint output slots: the fan-out answers exactly what the serial
  // loop would, and the pooled workspaces underneath keep per-summary
  // evaluation concurrent rather than serialized.
  ParallelFor(count, 2, [&](size_t i) {
    RouteDecision dec;
    auto est = Answer(qs[i], &dec);
    if (!est.ok()) {
      statuses[i] = est.status();
      return;
    }
    out[i] = *est;
    if (decisions != nullptr) (*decisions)[i] = dec;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<RouteDecision>* decisions) const {
  return AnswerAll(qs.data(), qs.size(), decisions);
}

}  // namespace entropydb
