#include "engine/query_router.h"

#include "common/thread_pool.h"

namespace entropydb {

std::vector<size_t> QueryRouter::CoveringEntries(
    const std::vector<uint8_t>& constrained, size_t* covered) const {
  size_t best = 0;
  std::vector<size_t> out;
  for (size_t k = 0; k < store_->size(); ++k) {
    size_t cover = 0;
    for (const ScoredPair& p : store_->entry(k).pairs) {
      if (constrained[p.a] && constrained[p.b]) ++cover;
    }
    if (cover > best) {
      best = cover;
      out.clear();
    }
    if (cover == best && cover > 0) out.push_back(k);
  }
  *covered = best;
  if (out.empty()) out.push_back(store_->widest());
  return out;
}

Result<bool> QueryRouter::BestSample(const CountingQuery& q, size_t* index,
                                     QueryEstimate* est) const {
  bool have = false;
  for (size_t s = 0; s < store_->num_samples(); ++s) {
    auto cand = store_->sample_source(s).AnswerCount(q);
    if (!cand.ok()) {
      // An arity mismatch means this companion simply cannot serve the
      // query — an expected probe miss, skip it. Anything else (a corrupt
      // companion failing at answer time) must surface, not silently
      // shrink the candidate set.
      if (cand.status().IsInvalidArgument()) continue;
      return cand.status();
    }
    if (!have || cand->variance < est->variance) {
      *est = *cand;
      *index = s;
      have = true;
    }
  }
  return have;
}

Result<bool> QueryRouter::HybridChallenge(const CountingQuery& q,
                                          const QueryEstimate& summary_cnt,
                                          RouteDecision* decision,
                                          size_t* sample_index,
                                          QueryEstimate* sample_est) const {
  if (decision != nullptr) {
    decision->summary_variance = summary_cnt.variance;
    decision->sample_variance = std::numeric_limits<double>::infinity();
    decision->from_sample = false;
  }
  size_t index = 0;
  QueryEstimate est;
  ASSIGN_OR_RETURN(const bool have, BestSample(q, &index, &est));
  if (!have) return false;
  const bool from_sample = est.variance < summary_cnt.variance;
  if (decision != nullptr) {
    decision->sample_variance = est.variance;
    decision->from_sample = from_sample;
    decision->sample_index = index;
  }
  if (sample_index != nullptr) *sample_index = index;
  if (sample_est != nullptr) *sample_est = est;
  return from_sample;
}

Result<QueryEstimate> QueryRouter::Answer(const CountingQuery& q,
                                          RouteDecision* decision) const {
  if (q.num_attributes() != store_->num_attributes()) {
    return Status::InvalidArgument("query arity does not match the store");
  }
  size_t covered = 0;
  std::vector<size_t> candidates =
      CoveringEntries(q.ConstrainedMask(), &covered);

  // Stage 2: among tied candidates, the lowest-variance estimate wins
  // (first wins ties, keeping routing deterministic). The returned
  // estimate is exactly the chosen summary's own answer.
  QueryEstimate best_est;
  size_t best_index = candidates.front();
  bool have = false;
  for (size_t k : candidates) {
    ASSIGN_OR_RETURN(QueryEstimate est, store_->summary(k).AnswerCount(q));
    if (!have || est.variance < best_est.variance) {
      best_est = est;
      best_index = k;
      have = true;
    }
  }

  // Stage 3 (hybrid): the best sample companion challenges the summary
  // winner; strictly lower expected variance takes the query.
  QueryEstimate sample_est;
  size_t sample_index = 0;
  ASSIGN_OR_RETURN(
      const bool from_sample,
      HybridChallenge(q, best_est, decision, &sample_index, &sample_est));

  if (decision != nullptr) {
    decision->index = best_index;
    decision->covered_pairs = covered;
    decision->candidates = candidates.size();
    decision->fallback = covered == 0;
    decision->expected_variance =
        from_sample ? sample_est.variance : best_est.variance;
  }
  return from_sample ? sample_est : best_est;
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const CountingQuery* qs, size_t count,
    std::vector<RouteDecision>* decisions) const {
  std::vector<QueryEstimate> out(count);
  if (decisions != nullptr) decisions->assign(count, RouteDecision{});
  std::vector<Status> statuses(count, Status::OK());
  // Disjoint output slots: the fan-out answers exactly what the serial
  // loop would, and the pooled workspaces underneath keep per-summary
  // evaluation concurrent rather than serialized.
  ParallelFor(count, 2, [&](size_t i) {
    RouteDecision dec;
    auto est = Answer(qs[i], &dec);
    if (!est.ok()) {
      statuses[i] = est.status();
      return;
    }
    out[i] = *est;
    if (decisions != nullptr) (*decisions)[i] = dec;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<RouteDecision>* decisions) const {
  return AnswerAll(qs.data(), qs.size(), decisions);
}

}  // namespace entropydb
