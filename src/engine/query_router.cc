#include "engine/query_router.h"

#include "common/thread_pool.h"

namespace entropydb {

std::vector<size_t> QueryRouter::CoveringEntries(
    const std::vector<uint8_t>& constrained, size_t* covered) const {
  size_t best = 0;
  std::vector<size_t> out;
  for (size_t k = 0; k < store_->size(); ++k) {
    size_t cover = 0;
    for (const ScoredPair& p : store_->entry(k).pairs) {
      if (constrained[p.a] && constrained[p.b]) ++cover;
    }
    if (cover > best) {
      best = cover;
      out.clear();
    }
    if (cover == best && cover > 0) out.push_back(k);
  }
  *covered = best;
  if (out.empty()) out.push_back(store_->widest());
  return out;
}

size_t QueryRouter::RouteEntry(
    const CountingQuery& q, const std::vector<AttrId>& extra_attrs,
    RouteDecision* decision,
    std::optional<QueryEstimate>* filter_count) const {
  if (decision != nullptr) *decision = RouteDecision{};
  if (q.num_attributes() != store_->num_attributes()) {
    // Arity errors surface from the chosen summary's own validation.
    return store_->widest();
  }
  std::vector<uint8_t> constrained = q.ConstrainedMask();
  for (AttrId a : extra_attrs) {
    if (a < constrained.size()) constrained[a] = 1;
  }
  size_t covered = 0;
  std::vector<size_t> candidates = CoveringEntries(constrained, &covered);
  size_t index = candidates.front();
  if (candidates.size() > 1) {
    // Tie-break like the counting path does, using the filter count's
    // variance as the routing objective (the aggregate itself would cost
    // a batched derivative pass per candidate).
    double best_var = 0.0;
    bool have = false;
    for (size_t k : candidates) {
      auto est = store_->summary(k).Answer(q);
      if (!est.ok()) continue;
      if (!have || est->variance < best_var) {
        best_var = est->variance;
        index = k;
        have = true;
        if (filter_count != nullptr) *filter_count = *est;
      }
    }
  }
  if (decision != nullptr) {
    decision->index = index;
    decision->covered_pairs = covered;
    decision->candidates = candidates.size();
    decision->fallback = covered == 0;
  }
  return index;
}

Result<bool> QueryRouter::BestSample(const CountingQuery& q, size_t* index,
                                     QueryEstimate* est) const {
  bool have = false;
  for (size_t s = 0; s < store_->num_samples(); ++s) {
    auto cand = store_->sample_source(s).Answer(q);
    if (!cand.ok()) {
      // An arity mismatch means this companion simply cannot serve the
      // query — an expected probe miss, skip it. Anything else (a corrupt
      // companion failing at answer time) must surface, not silently
      // shrink the candidate set.
      if (cand.status().IsInvalidArgument()) continue;
      return cand.status();
    }
    if (!have || cand->variance < est->variance) {
      *est = *cand;
      *index = s;
      have = true;
    }
  }
  return have;
}

Result<bool> QueryRouter::HybridChallenge(const CountingQuery& q,
                                          const QueryEstimate& summary_cnt,
                                          RouteDecision* decision,
                                          size_t* sample_index,
                                          QueryEstimate* sample_est) const {
  if (decision != nullptr) {
    decision->summary_variance = summary_cnt.variance;
    decision->sample_variance = std::numeric_limits<double>::infinity();
    decision->from_sample = false;
  }
  size_t index = 0;
  QueryEstimate est;
  ASSIGN_OR_RETURN(const bool have, BestSample(q, &index, &est));
  if (!have) return false;
  const bool from_sample = est.variance < summary_cnt.variance;
  if (decision != nullptr) {
    decision->sample_variance = est.variance;
    decision->from_sample = from_sample;
    decision->sample_index = index;
  }
  if (sample_index != nullptr) *sample_index = index;
  if (sample_est != nullptr) *sample_est = est;
  return from_sample;
}

Result<QueryEstimate> QueryRouter::Answer(const CountingQuery& q,
                                          RouteDecision* decision) const {
  if (q.num_attributes() != store_->num_attributes()) {
    return Status::InvalidArgument("query arity does not match the store");
  }
  size_t covered = 0;
  std::vector<size_t> candidates =
      CoveringEntries(q.ConstrainedMask(), &covered);

  // Stage 2: among tied candidates, the lowest-variance estimate wins
  // (first wins ties, keeping routing deterministic). The returned
  // estimate is exactly the chosen summary's own answer.
  QueryEstimate best_est;
  size_t best_index = candidates.front();
  bool have = false;
  for (size_t k : candidates) {
    ASSIGN_OR_RETURN(QueryEstimate est, store_->summary(k).Answer(q));
    if (!have || est.variance < best_est.variance) {
      best_est = est;
      best_index = k;
      have = true;
    }
  }

  // Stage 3 (hybrid): the best sample companion challenges the summary
  // winner; strictly lower expected variance takes the query.
  QueryEstimate sample_est;
  size_t sample_index = 0;
  ASSIGN_OR_RETURN(
      const bool from_sample,
      HybridChallenge(q, best_est, decision, &sample_index, &sample_est));

  if (decision != nullptr) {
    decision->index = best_index;
    decision->covered_pairs = covered;
    decision->candidates = candidates.size();
    decision->fallback = covered == 0;
    decision->expected_variance =
        from_sample ? sample_est.variance : best_est.variance;
  }
  return from_sample ? sample_est : best_est;
}

Result<QueryResult> QueryRouter::Answer(const AggregateQuery& q,
                                        RouteDecision* decision) const {
  RouteDecision dec;
  switch (q.kind) {
    case AggregateKind::kCount: {
      // COUNT runs the counting pipeline verbatim, so the aggregate
      // surface is bitwise the batcher's answer for the same filter.
      ASSIGN_OR_RETURN(QueryEstimate est, Answer(q.where, &dec));
      QueryResult out;
      out.estimate = est;
      out.count = est;
      out.has_moments = true;
      out.route = dec;
      if (decision != nullptr) *decision = dec;
      return out;
    }
    case AggregateKind::kSum: {
      std::optional<QueryEstimate> routed_cnt;
      const size_t index = RouteEntry(q.where, {q.agg_attr}, &dec, &routed_cnt);
      const EntropySummary& s = store_->summary(index);
      // Hybrid stage for SUM: stage-3 comparison on the filter count's
      // variance (the shared routing objective), then answer the
      // aggregate from the winner. The tie-break may have evaluated the
      // winner's count already; reuse it.
      if (store_->num_samples() > 0 &&
          q.where.num_attributes() == store_->num_attributes()) {
        auto cnt = routed_cnt.has_value() ? Result<QueryEstimate>(*routed_cnt)
                                          : s.Answer(q.where);
        if (cnt.ok()) {
          size_t sample_index = 0;
          ASSIGN_OR_RETURN(
              const bool from_sample,
              HybridChallenge(q.where, *cnt, &dec, &sample_index, nullptr));
          if (from_sample) {
            ASSIGN_OR_RETURN(QueryResult out,
                             store_->sample_source(sample_index).Answer(q));
            dec.expected_variance = out.estimate.variance;
            out.route = dec;
            if (decision != nullptr) *decision = dec;
            return out;
          }
        }
      }
      ASSIGN_OR_RETURN(QueryResult out, s.Answer(q));
      dec.expected_variance = out.estimate.variance;
      out.route = dec;
      if (decision != nullptr) *decision = dec;
      return out;
    }
    case AggregateKind::kAvg: {
      // Summary-only: samples have no batched ratio path.
      const size_t index = RouteEntry(q.where, {q.agg_attr}, &dec);
      ASSIGN_OR_RETURN(QueryResult out, store_->summary(index).Answer(q));
      dec.expected_variance = out.estimate.variance;
      out.route = dec;
      if (decision != nullptr) *decision = dec;
      return out;
    }
    default:
      return Status::NotSupported(
          std::string("aggregate kind ") + AggregateKindName(q.kind) +
          " is derived at the engine facade, not routed over one store");
  }
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const CountingQuery* qs, size_t count,
    std::vector<RouteDecision>* decisions) const {
  std::vector<QueryEstimate> out(count);
  if (decisions != nullptr) decisions->assign(count, RouteDecision{});
  std::vector<Status> statuses(count, Status::OK());
  // Disjoint output slots: the fan-out answers exactly what the serial
  // loop would, and the pooled workspaces underneath keep per-summary
  // evaluation concurrent rather than serialized.
  ParallelFor(count, 2, [&](size_t i) {
    RouteDecision dec;
    auto est = Answer(qs[i], &dec);
    if (!est.ok()) {
      statuses[i] = est.status();
      return;
    }
    out[i] = *est;
    if (decisions != nullptr) (*decisions)[i] = dec;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<std::vector<QueryEstimate>> QueryRouter::AnswerAll(
    const std::vector<CountingQuery>& qs,
    std::vector<RouteDecision>* decisions) const {
  return AnswerAll(qs.data(), qs.size(), decisions);
}

}  // namespace entropydb
