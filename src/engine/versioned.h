#ifndef ENTROPYDB_ENGINE_VERSIONED_H_
#define ENTROPYDB_ENGINE_VERSIONED_H_

#include <string>

#include "common/env.h"
#include "common/result.h"
#include "engine/compaction.h"
#include "engine/ingest.h"
#include "storage/version_set.h"

namespace entropydb {

/// \brief Publish-as-new-version wrappers over ingest and compaction.
///
/// PRs 7–8 made `--append` and compaction mutate a store directory in
/// place (safely — single manifest flip), which is right for a one-process
/// CLI but wrong under a serving front-end: an in-place flip yanks files
/// out from under a reader pinned on the old state. These wrappers run the
/// SAME ingest/compaction code against a cheap clone of the current
/// version (hard-linked shard data, copied MANIFEST + ingest.wal — see
/// VersionSet::CloneCurrentTo) and commit by flipping the root's CURRENT
/// pointer, so:
///
///   - readers pinned on v(n) keep every byte they opened;
///   - the flip is atomic — a crash mid-append strands an unpublished
///     v(n+1) that the next VersionSet::Open sweeps;
///   - old versions stay queryable (time travel) until retention GC.
///
/// The non-versioned AppendBatch/RunCompaction entry points remain for
/// plain store directories; a versioned root must only be mutated through
/// these.

/// What one versioned append did.
struct VersionAppendReport {
  /// The version id the batch was published as (the new current).
  uint64_t version = 0;
  /// The underlying WAL-backed ingest's report, run against the clone.
  IngestReport ingest;
};

/// What one versioned compaction did.
struct VersionCompactReport {
  /// The new current version id; 0 when the compaction triggers did not
  /// fire (nothing was cloned or published).
  uint64_t version = 0;
  /// The underlying compaction's report (`ran` == false when untriggered).
  CompactionReport compaction;
};

/// Appends one CSV batch to the versioned root at `root` as a NEW version:
/// clone current -> AppendBatch on the clone -> flip CURRENT. Requires a
/// published current version. `vopts.retain` (nonzero) also updates the
/// root's persisted retention window.
Result<VersionAppendReport> AppendVersion(const std::string& root,
                                          const std::string& csv_text,
                                          StoreOptions opts = {},
                                          VersionSet::Options vopts = {},
                                          Env* env = Env::Default());

/// Runs one compaction pass against the versioned root at `root`,
/// publishing the result as a NEW version. Plans against the current
/// version first: when the triggers do not fire, nothing is cloned and the
/// report's `version` is 0.
Result<VersionCompactReport> CompactVersion(const std::string& root,
                                            const CompactionOptions& opts,
                                            VersionSet::Options vopts = {},
                                            Env* env = Env::Default());

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_VERSIONED_H_
