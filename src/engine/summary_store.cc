#include "engine/summary_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/thread_pool.h"

namespace entropydb {

namespace fs = std::filesystem;

SummaryStore::SummaryStore(std::vector<StoreEntry> entries)
    : entries_(std::move(entries)) {
  size_t best_span = 0;
  for (size_t k = 0; k < entries_.size(); ++k) {
    std::set<AttrId> span;
    for (const ScoredPair& p : entries_[k].pairs) {
      span.insert(p.a);
      span.insert(p.b);
    }
    if (span.size() > best_span) {
      best_span = span.size();
      widest_ = k;
    }
  }
}

Result<std::shared_ptr<SummaryStore>> SummaryStore::FromEntries(
    std::vector<StoreEntry> entries) {
  if (entries.empty()) {
    return Status::InvalidArgument("a summary store needs at least one entry");
  }
  for (const StoreEntry& e : entries) {
    if (e.summary == nullptr) {
      return Status::InvalidArgument("store entry without a summary");
    }
    if (e.summary->num_attributes() != entries.front().summary->num_attributes() ||
        e.summary->n() != entries.front().summary->n()) {
      return Status::InvalidArgument(
          "store entries disagree on the relation schema");
    }
  }
  return std::shared_ptr<SummaryStore>(new SummaryStore(std::move(entries)));
}

Result<std::shared_ptr<SummaryStore>> SummaryStore::Build(const Table& table,
                                                          StoreOptions opts) {
  std::vector<ScoredPair> chosen;
  size_t budget = opts.total_budget;
  if (opts.use_budget_advisor) {
    AdvisorOptions aopts;
    aopts.exclude = opts.exclude;
    ASSIGN_OR_RETURN(std::vector<BudgetCandidate> candidates,
                     BudgetAdvisor::Advise(table, budget, aopts));
    chosen = candidates.front().pairs;  // best split first
  } else {
    auto ranked = PairSelector::RankPairs(table, opts.exclude);
    chosen = PairSelector::Choose(ranked, opts.num_summaries,
                                  PairStrategy::kAttributeCover);
  }
  if (chosen.empty()) {
    return Status::InvalidArgument(
        "no attribute pairs available for a summary store");
  }
  const size_t k = chosen.size();
  const size_t bs = std::max<size_t>(1, budget / k);

  // Independent builds: select each pair's statistics and solve its model
  // in parallel. Outputs are disjoint slots, so results are deterministic.
  std::vector<StoreEntry> entries(k);
  std::vector<Status> statuses(k, Status::OK());
  StatisticSelector selector(opts.heuristic);
  ParallelFor(k, 2, [&](size_t i) {
    const ScoredPair& pair = chosen[i];
    auto stats = selector.Select(table, pair.a, pair.b, bs);
    auto built = EntropySummary::Build(table, std::move(stats), opts.summary);
    if (!built.ok()) {
      statuses[i] = built.status();
      return;
    }
    entries[i].summary = *built;
    entries[i].pairs = {pair};
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return FromEntries(std::move(entries));
}

Status SummaryStore::Save(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  std::ofstream out(fs::path(dir) / "MANIFEST");
  if (!out) return Status::IOError("cannot write manifest in " + dir);
  out << "ENTROPYDB_STORE_V1\n";
  out << "summaries " << entries_.size() << "\n";
  char buf[32];
  for (size_t k = 0; k < entries_.size(); ++k) {
    const std::string file = "summary_" + std::to_string(k) + ".edb";
    out << "entry " << file << " pairs " << entries_[k].pairs.size();
    for (const ScoredPair& p : entries_[k].pairs) {
      std::snprintf(buf, sizeof(buf), "%.17g", p.cramers_v);
      out << ' ' << p.a << ' ' << p.b << ' ' << buf;
    }
    out << '\n';
    Status s = entries_[k].summary->Save((fs::path(dir) / file).string());
    if (!s.ok()) return s;
  }
  if (!out.good()) return Status::IOError("manifest write failure in " + dir);
  return Status::OK();
}

Result<std::shared_ptr<SummaryStore>> SummaryStore::Load(
    const std::string& dir, SummaryOptions opts) {
  std::ifstream in(fs::path(dir) / "MANIFEST");
  if (!in) return Status::IOError("cannot open store manifest in " + dir);
  std::string token;
  if (!(in >> token) || token != "ENTROPYDB_STORE_V1") {
    return Status::Corruption("bad store manifest header in " + dir);
  }
  size_t k = 0;
  if (!(in >> token >> k) || token != "summaries" || k == 0) {
    return Status::Corruption("bad summaries record in " + dir);
  }
  std::vector<std::string> files(k);
  std::vector<StoreEntry> entries(k);
  for (size_t i = 0; i < k; ++i) {
    size_t npairs = 0;
    if (!(in >> token >> files[i]) || token != "entry" ||
        !(in >> token >> npairs) || token != "pairs") {
      return Status::Corruption("bad store entry record in " + dir);
    }
    entries[i].pairs.resize(npairs);
    for (ScoredPair& p : entries[i].pairs) {
      if (!(in >> p.a >> p.b >> p.cramers_v)) {
        return Status::Corruption("bad pair record in " + dir);
      }
    }
  }

  // Summary loads are independent (each rebuilds its own compressed
  // polynomial and warms its own pool), so fan them out too.
  std::vector<Status> statuses(k, Status::OK());
  ParallelFor(k, 2, [&](size_t i) {
    auto loaded =
        EntropySummary::Load((fs::path(dir) / files[i]).string(), opts);
    if (!loaded.ok()) {
      statuses[i] = loaded.status();
      return;
    }
    entries[i].summary = *loaded;
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  auto store = FromEntries(std::move(entries));
  if (!store.ok()) {
    return Status::Corruption("inconsistent store in " + dir + ": " +
                              store.status().message());
  }
  // Pair metadata must reference real attributes.
  for (size_t i = 0; i < (*store)->size(); ++i) {
    for (const ScoredPair& p : (*store)->entry(i).pairs) {
      if (p.a >= (*store)->num_attributes() ||
          p.b >= (*store)->num_attributes()) {
        return Status::Corruption("pair attribute out of range in " + dir);
      }
    }
  }
  return store;
}

}  // namespace entropydb
