#ifndef ENTROPYDB_ENGINE_SHARDED_STORE_H_
#define ENTROPYDB_ENGINE_SHARDED_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "engine/query_router.h"
#include "engine/source_store.h"
#include "storage/partitioner.h"
#include "storage/zone_map.h"

namespace entropydb {

/// Build-time knobs for a sharded store.
struct ShardedOptions {
  /// Number of row-shards S (>= 1; 1 is the monolithic layout inside the
  /// sharded format, handy as a scaling baseline).
  size_t num_shards = 4;
  /// How rows are assigned to shards (storage/partitioner.h).
  PartitionScheme scheme = PartitionScheme::kRoundRobin;
  /// Seed for PartitionScheme::kHash.
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
  /// Routing attribute for PartitionScheme::kAttribute (ignored by the
  /// other schemes). Attribute partitioning gives each shard a contiguous
  /// slice of this attribute's domain, which is what makes the per-shard
  /// zone maps maximally selective.
  AttrId partition_attr = 0;
  /// Per-shard build knobs, applied to every shard's SourceStore::Build:
  /// each shard models its own row partition with the FULL budget/sample
  /// settings (sharding scales data size, it does not dilute per-shard
  /// fidelity). Pair ranking runs ONCE on the full relation and is forced
  /// into every shard (StoreOptions::forced_pairs), so all shards model
  /// the same attribute pairs; sample seeds are offset per shard so
  /// companion draws decorrelate.
  StoreOptions store;
};

/// \brief A horizontally partitioned SourceStore: S disjoint row-shards,
/// each carrying its own maxent summaries and sample companions built with
/// the existing single-store machinery, answered by fanning a query out to
/// every shard and merging the per-shard estimates.
///
/// The layering is deliberately bolt-on (the OrpheusDB pattern): nothing
/// below this class knows about shards. Build partitions the base table
/// (storage/partitioner.h), ranks attribute pairs once globally, then
/// builds the S SourceStores IN PARALLEL on the shared pool — per-shard
/// builds are independent, and their own internal fan-outs degrade inline
/// on worker threads. Every shard keeps the base schema and domains, so
/// one CountingQuery is position-compatible with all of them.
///
/// Merge rule (docs/ARCHITECTURE.md): the shards partition the rows, so a
/// COUNT/SUM decomposes as the sum of per-shard answers, and because each
/// shard's model is fit independently the per-shard estimators are
/// independent random variables — point estimates AND variances are both
/// additive. Each shard routes its sub-query through its own QueryRouter
/// (coverage -> variance -> hybrid summary-vs-sample), so the best source
/// is chosen PER SHARD: a rare slice can be served by shard 2's stratified
/// sample and shard 3's summary in the same merged answer.
///
/// Persistence is a MANIFEST v4 directory: the manifest records the
/// scheme, the shard list, and the ingest journal's sealed-batch count
/// (`wal_sealed`, see engine/ingest.h); each shard is a self-contained
/// store subdirectory. Save stages the WHOLE tree into a `<dir>.tmp-*`
/// sibling and publishes it in one rename, so a crash never exposes a
/// mixed-shard store. v3 (PR 5-era) sharded directories keep loading;
/// v2/v1 directories load as monolithic stores — EntropyEngine::Open
/// sniffs the manifest header and dispatches.
class ShardedStore {
 public:
  /// Partitions `table` and builds every shard's sources in parallel.
  static Result<std::shared_ptr<ShardedStore>> Build(const Table& table,
                                                     ShardedOptions opts = {});

  /// Assembles a sharded store from already-built per-shard stores (the
  /// path Load uses). Shards must be non-empty and agree on arity and
  /// per-attribute domain sizes. `zone_maps` is empty (no pruning) or one
  /// entry per shard — a null entry means that shard is never pruned; a
  /// non-null one must agree with the shard's arity and domain sizes.
  static Result<std::shared_ptr<ShardedStore>> FromShards(
      std::vector<std::shared_ptr<SourceStore>> shards,
      PartitionScheme scheme,
      std::vector<std::shared_ptr<const ZoneMap>> zone_maps = {},
      AttrId partition_attr = 0);

  size_t num_shards() const { return shards_.size(); }
  const SourceStore& shard(size_t s) const { return *shards_[s]; }
  std::shared_ptr<SourceStore> shard_ptr(size_t s) const {
    return shards_[s];
  }
  /// The per-shard serving facade (full hybrid routing per shard).
  const EntropyEngine& shard_engine(size_t s) const { return *engines_[s]; }
  PartitionScheme scheme() const { return scheme_; }
  /// Routing attribute (meaningful under PartitionScheme::kAttribute).
  AttrId partition_attr() const { return partition_attr_; }
  /// Compaction generation the loaded manifest carried (0 for a store no
  /// compaction ever ran on, and for in-memory stores).
  uint64_t compaction_gen() const { return compaction_gen_; }
  /// Shard s's zone map; null when the shard carries none (legacy store,
  /// or a deleted zone-map file degraded at load) — such shards are never
  /// pruned.
  std::shared_ptr<const ZoneMap> zone_map(size_t s) const {
    return zone_maps_[s];
  }

  /// Runtime toggle for zone-map consultation (default on). Turning it
  /// off forces TRUE full fan-out — the reference the pruning benches and
  /// bitwise-identity tests compare against.
  void set_zone_map_pruning(bool on) { prune_ = on; }
  bool zone_map_pruning() const { return prune_; }

  // Schema accessors, identical across shards (validated on FromShards).
  const std::vector<std::string>& attr_names() const {
    return shards_.front()->attr_names();
  }
  const std::vector<Domain>& domains() const {
    return shards_.front()->domains();
  }
  bool has_domains() const { return shards_.front()->has_domains(); }
  size_t num_attributes() const { return shards_.front()->num_attributes(); }
  /// TOTAL relation cardinality: the sum of per-shard n.
  double n() const { return total_n_; }

  /// Merged COUNT(*): every shard routes and answers, estimates and
  /// variances sum. `per_shard` (optional) receives shard s's own routing
  /// decision in slot s — the "per-shard route printing" surface of
  /// entropydb_query.
  Result<QueryEstimate> Answer(
      const CountingQuery& q,
      std::vector<RouteDecision>* per_shard = nullptr) const;

  /// The unified aggregate surface, merged across shards. COUNT and SUM
  /// are additive: estimates, variances, BOTH moment legs, and the
  /// SUM/COUNT covariance all sum over the disjoint row partitions
  /// (independently fit models make the per-shard estimators independent).
  /// AVG merges the per-shard moment legs the same way and then applies
  /// ONE delta method to the merged moments — covariance term included, so
  /// the cross-shard ratio variance matches the unsharded formula instead
  /// of dropping Cov(S, C) (docs/ESTIMATORS.md "Cross-shard merging").
  /// QUANTILE/TOPK/JOIN derive at the engine facade from the merged
  /// group-by marginals — kNotSupported here.
  Result<QueryResult> Answer(
      const AggregateQuery& q,
      std::vector<RouteDecision>* per_shard = nullptr) const;

  /// Merged whole-attribute group-by: per-value counts are additive across
  /// shards exactly like plain COUNTs.
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base) const;

  /// Merged point group-by over explicit keys (additive per key).
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys,
      const CountingQuery& base) const;

  /// Batched COUNT workload: the shards x queries grid fans out flat on
  /// the ParallelFor pool (each cell is one shard answering one query into
  /// a disjoint slot), then per-query merges run serially in shard order —
  /// so slot i is bitwise Answer(qs[i]). `per_shard` (optional) gets
  /// decisions[i][s] = shard s's decision on qs[i].
  Result<std::vector<QueryEstimate>> AnswerAll(
      const std::vector<CountingQuery>& qs,
      std::vector<std::vector<RouteDecision>>* per_shard = nullptr) const;

  /// The persisted routing metadata of a sharded directory, exposed so
  /// the ingest path (engine/ingest.h) can append shards and advance the
  /// sealed-batch cursor without reloading every shard.
  struct Manifest {
    PartitionScheme scheme = PartitionScheme::kRoundRobin;
    /// Routing attribute, persisted in the scheme token ("attr:<id>")
    /// when scheme is kAttribute.
    AttrId partition_attr = 0;
    std::vector<std::string> shard_dirs;
    /// Number of leading WAL records already sealed into shards; replay
    /// starts after them (0 for a store with no ingest history).
    uint64_t wal_sealed = 0;
    /// Shard dirs (a subset of `shard_dirs`) that carry a ZONEMAP file.
    /// v3 manifests and pre-pruning v4 manifests list none — such stores
    /// load unchanged and skip pruning.
    std::vector<std::string> zonemap_dirs;
    /// Monotone compaction generation: 0 for a store no compaction ever
    /// ran on; RunCompaction (engine/compaction.h) bumps it by one at
    /// each commit and names the shards it publishes after it
    /// ("shard_c<gen>_<j>").
    uint64_t compaction_gen = 0;
    /// Per-shard row counts aligned with `shard_dirs`: either empty
    /// (unknown — a pre-compaction-era manifest) or exactly one entry
    /// per shard. The compaction planner's oversize trigger reads these
    /// without loading any shard; Save, ingest sealing, and compaction
    /// all maintain them.
    std::vector<uint64_t> shard_rows;
  };

  /// Reads `dir/MANIFEST`. Accepts v4-sharded (checksummed — footer
  /// required) and legacy v3 (loads with a stderr warning; wal_sealed 0).
  static Result<Manifest> ReadManifest(const std::string& dir,
                                       Env* env = Env::Default(),
                                       bool verify_checksums = true);
  /// Atomically replaces `dir/MANIFEST` with a checksummed v4 record of
  /// `m`: written to a tmp name, synced, renamed into place, directory
  /// synced. This single flip is what makes an ingest seal atomic — the
  /// new shard list and the advanced wal_sealed cursor become visible
  /// together or not at all.
  static Status WriteManifest(const std::string& dir, const Manifest& m,
                              Env* env = Env::Default());

  /// Atomically persists the store at `dir`: the whole tree (v4 MANIFEST
  /// plus one self-contained store subdirectory per shard, written in
  /// parallel) is staged into a `<dir>.tmp-<nonce>` sibling and published
  /// in one rename.
  Status Save(const std::string& dir, Env* env = Env::Default()) const;
  /// Restores a v4/v3 sharded directory (shards load in parallel; `opts`
  /// is passed through to every summary load). Rejects v1/v2 manifests —
  /// those are monolithic stores, which SourceStore::Load owns. Stale
  /// staging directories next to `dir` are garbage-collected, and so is
  /// every `shard_*` entry inside `dir` the manifest does not reference:
  /// a crashed ingest seal or compaction strands half-built shards, and
  /// a crash between a compaction's manifest flip and its cleanup leaves
  /// replaced ones — either way the orphans' rows are journal-backed
  /// (or about to be rebuilt from the journal), so removal never loses
  /// data.
  static Result<std::shared_ptr<ShardedStore>> Load(const std::string& dir,
                                                    SummaryOptions opts = {},
                                                    Env* env = Env::Default());

  /// True when `dir` holds a sharded (v3 or v4-sharded) manifest — the
  /// dispatch test EntropyEngine::Open uses.
  static bool IsShardedDir(const std::string& dir,
                           Env* env = Env::Default());

 private:
  ShardedStore(std::vector<std::shared_ptr<SourceStore>> shards,
               PartitionScheme scheme,
               std::vector<std::shared_ptr<const ZoneMap>> zone_maps,
               AttrId partition_attr);

  /// True when shard `s`'s zone map proves `q` cannot match it (the skip
  /// test every Answer* path runs). `*attr` gets the proving attribute.
  bool Prunable(size_t s, const CountingQuery& q, AttrId* attr) const;

  std::vector<std::shared_ptr<SourceStore>> shards_;
  std::vector<std::shared_ptr<EntropyEngine>> engines_;
  /// One slot per shard; null = never pruned.
  std::vector<std::shared_ptr<const ZoneMap>> zone_maps_;
  PartitionScheme scheme_ = PartitionScheme::kRoundRobin;
  AttrId partition_attr_ = 0;
  uint64_t compaction_gen_ = 0;
  bool prune_ = true;
  double total_n_ = 0.0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_ENGINE_SHARDED_STORE_H_
