#ifndef ENTROPYDB_ENTROPYDB_H_
#define ENTROPYDB_ENTROPYDB_H_

/// \file entropydb.h
/// \brief Umbrella header for the EntropyDB library — probabilistic database
/// summarization for interactive data exploration (Orr, Balazinska, Suciu;
/// VLDB 2017).
///
/// Typical use — the engine facade serves one summary or a routed
/// multi-source store (maxent summaries + sample companions) behind the
/// same query surface:
/// \code
///   using namespace entropydb;
///   auto table = FlightsGenerator::Generate({.num_rows = 500000});
///   StoreOptions opts;
///   opts.num_summaries = 3;    // top-3 correlated pairs, built in parallel
///   opts.total_budget = 1500;  // 2-D statistics split across them
///   opts.num_stratified_samples = 2;  // hybrid: samples ride along
///   auto store = SourceStore::Build(**table, opts);
///   auto engine = EntropyEngine::FromStore(*store);
///   auto q = QueryBuilder(**table)
///                .WhereEquals("origin", Value(std::string("S3")))
///                .WhereBetween("distance", 500, 1000)
///                .Build();
///   RouteDecision why;
///   auto result = engine->Answer(AggregateQuery::Count(*q), &why);
///   // why.from_sample tells you which estimator family won;
///   // docs/ESTIMATORS.md derives the variance comparison. The same
///   // Answer surface takes Sum/Avg/Quantile/TopK; AnswerJoin fuses two
///   // engines' models on a shared attribute.
/// \endcode
///
/// Single-summary path (the original seed API) keeps the same shape:
/// EntropySummary::Build + Answer, or EntropyEngine::FromSummary to keep
/// the facade.

#include "common/env.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "engine/compaction.h"
#include "engine/engine.h"
#include "engine/estimate_source.h"
#include "engine/ingest.h"
#include "engine/query_router.h"
#include "engine/sharded_store.h"
#include "engine/source_store.h"
#include "engine/versioned.h"
#include "maxent/answerer.h"
#include "maxent/budget_advisor.h"
#include "maxent/dense_model.h"
#include "maxent/gradient_solver.h"
#include "maxent/polynomial.h"
#include "maxent/solver.h"
#include "maxent/summary.h"
#include "maxent/variable_registry.h"
#include "maxent/workspace_pool.h"
#include "query/counting_query.h"
#include "query/exact_evaluator.h"
#include "query/linear_query.h"
#include "query/parser.h"
#include "query/predicate.h"
#include "sampling/sample.h"
#include "sampling/sample_estimator.h"
#include "sampling/sample_index.h"
#include "sampling/sample_io.h"
#include "sampling/stratified_sampler.h"
#include "sampling/uniform_sampler.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire_protocol.h"
#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/kd_tree.h"
#include "stats/pair_selector.h"
#include "stats/selector.h"
#include "stats/statistic.h"
#include "storage/csv.h"
#include "storage/partitioner.h"
#include "storage/table.h"
#include "storage/table_builder.h"
#include "storage/version_set.h"
#include "storage/wal.h"
#include "storage/zone_map.h"
#include "workload/flights.h"
#include "workload/metrics.h"
#include "workload/particles.h"
#include "workload/query_workload.h"

#endif  // ENTROPYDB_ENTROPYDB_H_
