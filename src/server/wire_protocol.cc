#include "server/wire_protocol.h"

#include <cstdio>
#include <sstream>

namespace entropydb {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits a payload into lines ('\n' separated; no trailing empty line for
/// a trailing newline).
std::vector<std::string> SplitLines(const std::string& payload) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= payload.size()) {
    const size_t nl = payload.find('\n', start);
    if (nl == std::string::npos) {
      if (start < payload.size()) lines.push_back(payload.substr(start));
      break;
    }
    lines.push_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Parses a base-10 uint64; rejects empty, sign, and trailing junk.
bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  char header[kFrameHeaderSize + 1];
  std::snprintf(header, sizeof(header), "%08zx\n", payload.size());
  std::string frame(header, kFrameHeaderSize);
  frame.append(payload);
  return frame;
}

void FrameDecoder::Feed(std::string_view bytes) {
  buffer_.append(bytes);
}

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (poisoned_) {
    return Status::InvalidArgument("frame decoder poisoned by earlier error");
  }
  if (buffer_.size() < kFrameHeaderSize) {
    return std::optional<std::string>(std::nullopt);
  }
  size_t length = 0;
  for (size_t i = 0; i < 8; ++i) {
    const int digit = HexDigit(buffer_[i]);
    if (digit < 0) {
      poisoned_ = true;
      return Status::InvalidArgument("malformed frame header (not hex)");
    }
    length = (length << 4) | static_cast<size_t>(digit);
  }
  if (buffer_[8] != '\n') {
    poisoned_ = true;
    return Status::InvalidArgument("malformed frame header (no newline)");
  }
  if (length > kMaxFramePayload) {
    poisoned_ = true;
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  if (buffer_.size() < kFrameHeaderSize + length) {
    return std::optional<std::string>(std::nullopt);
  }
  std::string payload = buffer_.substr(kFrameHeaderSize, length);
  buffer_.erase(0, kFrameHeaderSize + length);
  return std::optional<std::string>(std::move(payload));
}

std::string EncodeRequest(const Request& req) {
  std::ostringstream out;
  switch (req.type) {
    case CommandType::kOpen:
      out << "OPEN ";
      if (req.version == 0) {
        out << "live";
      } else {
        out << req.version;
      }
      break;
    case CommandType::kQuery:
      out << "QUERY";
      if (req.deadline_ms > 0) out << "/" << req.deadline_ms;
      out << " " << req.query;
      break;
    case CommandType::kJoin:
      out << "JOIN";
      if (req.deadline_ms > 0) out << "/" << req.deadline_ms;
      out << " " << req.query;
      break;
    case CommandType::kBatch:
      out << "BATCH";
      if (req.deadline_ms > 0) out << "/" << req.deadline_ms;
      out << " " << req.queries.size();
      for (const std::string& q : req.queries) out << "\n" << q;
      break;
    case CommandType::kStats:
      out << "STATS";
      break;
    case CommandType::kVersion:
      out << "VERSION";
      break;
  }
  return out.str();
}

Result<Request> ParseRequest(const std::string& payload) {
  const std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty()) return Status::InvalidArgument("empty request");
  const std::string& first = lines[0];
  const size_t space = first.find(' ');
  std::string word = first.substr(0, space);
  std::string rest =
      space == std::string::npos ? std::string() : first.substr(space + 1);

  // Peel an optional "/<deadline-ms>" off the command word.
  Request req;
  const size_t slash = word.find('/');
  if (slash != std::string::npos) {
    if (!ParseU64(word.substr(slash + 1), &req.deadline_ms) ||
        req.deadline_ms == 0) {
      return Status::InvalidArgument("malformed deadline in: " + first);
    }
    word = word.substr(0, slash);
  }

  if (word == "STATS" || word == "VERSION") {
    req.type = word == "STATS" ? CommandType::kStats : CommandType::kVersion;
    if (!rest.empty()) {
      return Status::InvalidArgument(word + " takes no arguments");
    }
  } else if (word == "OPEN") {
    req.type = CommandType::kOpen;
    if (rest == "live") {
      req.version = 0;
    } else if (!ParseU64(rest, &req.version) || req.version == 0) {
      return Status::InvalidArgument("OPEN wants a version id or 'live': " +
                                     first);
    }
  } else if (word == "QUERY") {
    req.type = CommandType::kQuery;
    if (rest.empty()) return Status::InvalidArgument("QUERY without text");
    req.query = rest;
  } else if (word == "JOIN") {
    req.type = CommandType::kJoin;
    if (rest.empty()) return Status::InvalidArgument("JOIN without text");
    req.query = rest;
  } else if (word == "BATCH") {
    req.type = CommandType::kBatch;
    uint64_t n = 0;
    if (!ParseU64(rest, &n)) {
      return Status::InvalidArgument("BATCH wants a query count: " + first);
    }
    if (n > kMaxBatchQueries) {
      return Status::InvalidArgument("BATCH exceeds max queries");
    }
    if (lines.size() != n + 1) {
      return Status::InvalidArgument("BATCH count does not match lines");
    }
    req.queries.assign(lines.begin() + 1, lines.end());
    for (const std::string& q : req.queries) {
      if (q.empty()) return Status::InvalidArgument("empty query in BATCH");
    }
  } else {
    return Status::InvalidArgument("unknown command: " + word);
  }

  // Only the command's own lines may follow the first.
  if (req.type != CommandType::kBatch && lines.size() > 1) {
    return Status::InvalidArgument("unexpected extra lines after " + word);
  }
  return req;
}

std::string EncodeOkResponse(const std::vector<std::string>& lines) {
  std::string out = "OK";
  for (const std::string& line : lines) {
    out += "\n";
    out += line;
  }
  return out;
}

std::string EncodeErrorResponse(const Status& status) {
  std::string out = "ERR ";
  out += WireErrorCode(status.code());
  out += " ";
  // Keep the payload one line; the message is advisory, the code is the
  // contract.
  std::string msg = status.message();
  for (char& c : msg) {
    if (c == '\n') c = ' ';
  }
  out += msg;
  return out;
}

Result<WireResponse> ParseResponse(const std::string& payload) {
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty()) return Status::InvalidArgument("empty response");
  WireResponse resp;
  if (lines[0] == "OK") {
    resp.ok = true;
  } else if (lines[0].rfind("ERR ", 0) == 0) {
    const std::string rest = lines[0].substr(4);
    const size_t space = rest.find(' ');
    resp.code = rest.substr(0, space);
    if (space != std::string::npos) resp.message = rest.substr(space + 1);
    if (resp.code.empty()) {
      return Status::InvalidArgument("ERR without code");
    }
  } else {
    return Status::InvalidArgument("malformed status line: " + lines[0]);
  }
  resp.lines.assign(lines.begin() + 1, lines.end());
  return resp;
}

std::string_view WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotSupported:
      return "BAD_REQUEST";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "SERVER_BUSY";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    default:
      return "INTERNAL";
  }
}

Status StatusFromWire(const std::string& code, const std::string& message) {
  if (code == "BAD_REQUEST") return Status::InvalidArgument(message);
  if (code == "NOT_FOUND") return Status::NotFound(message);
  if (code == "SERVER_BUSY") return Status::ResourceExhausted(message);
  if (code == "DEADLINE_EXCEEDED") return Status::DeadlineExceeded(message);
  if (code == "FAILED_PRECONDITION") {
    return Status::FailedPrecondition(message);
  }
  return Status::Internal(message);
}

}  // namespace entropydb
