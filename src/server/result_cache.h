#ifndef ENTROPYDB_SERVER_RESULT_CACHE_H_
#define ENTROPYDB_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "query/aggregate.h"
#include "query/parser.h"

namespace entropydb {

/// The canonical form of a parsed query, used as the cache key: aggregate
/// (plus its rank/count parameter for QUANTILE/TOPK) + aggregated
/// attribute + each non-ANY predicate rendered in encoded (bucket code)
/// space. Because the parser has already resolved labels, numeric values,
/// and keyword case into codes, every spelling of the same predicate set
/// shares one key; a point range ([c,c]) and a one-element IN collapse to
/// the "=c" rendering for the same reason.
std::string CanonicalQueryKey(const ParsedQuery& query);

/// The canonical form of a parsed JOIN query: aggregate + join-attribute
/// pair + both sides' predicates (left rendered before right, separated so
/// identical predicate sets on different sides cannot collide).
std::string CanonicalJoinQueryKey(const ParsedJoinQuery& query);

/// \brief LRU cache of query answers, keyed on (version, canonical
/// query).
///
/// Correctness is free: a version's store files never change after its
/// CURRENT flip (storage/version_set.h), so an estimate computed against
/// v(n) is valid for v(n) forever. There is no invalidation path —
/// publishing v(n+1) changes the version half of every new key, and
/// entries for retired versions simply age out of the LRU. Thread-safe;
/// one instance serves all sessions.
class ResultCache {
 public:
  /// Monotonic hit/miss counters for STATS.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached answer for (version, key), refreshing its LRU
  /// position, or nullopt (counted as a miss). The stored QueryResult is
  /// returned bit-for-bit, so a response rendered from a hit is byte-
  /// identical to the response that populated the entry.
  std::optional<QueryResult> Get(uint64_t version, const std::string& key);

  /// Inserts or refreshes (version, key); evicts the least recently used
  /// entry past capacity. A capacity of 0 disables caching.
  void Put(uint64_t version, const std::string& key,
           const QueryResult& result);

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    QueryResult result;
  };

  static std::string FullKey(uint64_t version, const std::string& key) {
    return "v" + std::to_string(version) + "|" + key;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_RESULT_CACHE_H_
