#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <future>

#include "query/parser.h"
#include "storage/version_set.h"

namespace entropydb {

namespace {

Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// "estimate <expectation> <variance>" with round-trippable doubles, so a
/// pinned reader's responses can be compared bitwise across publishes.
std::string EstimateLine(const QueryEstimate& est) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "estimate %.17g %.17g", est.expectation,
                est.variance);
  return buf;
}

/// Result lines for any aggregate kind, rendered purely from the
/// QueryResult — the cache stores QueryResults, so a hit re-renders the
/// exact bytes the original answer produced:
///
///     estimate <expectation> <variance>
///     [bound <lo> <hi>]                  (QUANTILE's value-space bound)
///     [cell <code> <expectation> <variance>]...   (TOPK, largest first)
std::vector<std::string> ResultLines(const QueryResult& result) {
  std::vector<std::string> lines;
  lines.push_back(EstimateLine(result.estimate));
  if (result.has_bound) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "bound %.17g %.17g", result.bound_lo,
                  result.bound_hi);
    lines.push_back(buf);
  }
  for (const GroupCell& cell : result.cells) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "cell %llu %.17g %.17g",
                  static_cast<unsigned long long>(cell.code),
                  cell.estimate.expectation, cell.estimate.variance);
    lines.push_back(buf);
  }
  return lines;
}

/// Wraps a batcher COUNT estimate the way Answer(AggregateQuery::Count)
/// does, so QUERY and BATCH populate the cache with identical values.
QueryResult CountResult(const QueryEstimate& est) {
  QueryResult out;
  out.estimate = est;
  out.count = est;
  out.has_moments = true;
  return out;
}

/// Bucket-representative weights for SUM/AVG over `attr` (the
/// entropydb_query rule: label order index for categorical attributes,
/// bucket midpoints for numeric ones).
std::vector<double> AggregateWeights(const EntropyEngine& engine,
                                     AttrId attr) {
  const Domain& dom = engine.domains()[attr];
  std::vector<double> weights(dom.size());
  for (Code v = 0; v < dom.size(); ++v) {
    weights[v] = dom.is_categorical()
                     ? static_cast<double>(v)
                     : dom.RepresentativeFor(v).as_double();
  }
  return weights;
}

std::string JoinIds(const std::vector<uint64_t>& ids) {
  std::string out;
  for (uint64_t id : ids) {
    if (!out.empty()) out += " ";
    out += std::to_string(id);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Start(
    const Options& options, Env* env) {
  std::unique_ptr<QueryServer> server(new QueryServer(options, env));

  if (VersionSet::IsVersionedRoot(options.path, env)) {
    ASSIGN_OR_RETURN(
        server->catalog_,
        VersionCatalog::Open(options.path, options.summary, env));
  } else {
    ASSIGN_OR_RETURN(server->static_engine_,
                     EntropyEngine::Open(options.path, options.summary, env));
  }
  if (!options.join_path.empty()) {
    ASSIGN_OR_RETURN(
        server->join_engine_,
        EntropyEngine::Open(options.join_path, options.summary, env));
  }

  QueryBatcher::Options bopts;
  bopts.queue_capacity = options.queue_capacity;
  bopts.max_batch = options.max_batch;
  server->batcher_ = std::make_unique<QueryBatcher>(bopts);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind port " + std::to_string(options.port) +
                           ": " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    threads.swap(session_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (batcher_ != nullptr) batcher_->Stop();
}

Result<bool> QueryServer::RefreshVersions() {
  if (catalog_ == nullptr) return false;
  return catalog_->Refresh();
}

QueryServer::Stats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void QueryServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.connections;
    }
    session_fds_.push_back(fd);
    session_threads_.emplace_back([this, fd] { SessionLoop(fd); });
  }
}

void QueryServer::SessionLoop(int fd) {
  Session session;
  FrameDecoder decoder;
  char buf[1 << 14];
  for (;;) {
    auto frame = decoder.Next();
    if (!frame.ok()) {
      // Desynchronized stream: report once, then close — the length
      // prefix cannot be trusted again.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      SendAll(fd, EncodeFrame(EncodeErrorResponse(frame.status()))).ok();
      break;
    }
    if (frame->has_value()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
      }
      std::string response;
      auto request = ParseRequest(**frame);
      if (!request.ok()) {
        response = EncodeErrorResponse(request.status());
      } else {
        auto handled = HandleRequest(&session, *request);
        response = handled.ok() ? *handled
                                : EncodeErrorResponse(handled.status());
      }
      if (!SendAll(fd, EncodeFrame(response)).ok()) break;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client closed, or Stop() shut the socket down
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
  ::close(fd);
}

Result<std::string> QueryServer::HandleRequest(Session* session,
                                               const Request& req) {
  switch (req.type) {
    case CommandType::kQuery:
      return HandleQuery(session, req);
    case CommandType::kJoin:
      return HandleJoin(session, req);
    case CommandType::kBatch:
      return HandleBatch(session, req);
    case CommandType::kOpen:
      return HandleOpen(session, req);
    case CommandType::kStats:
      return HandleStats(session);
    case CommandType::kVersion:
      return HandleVersion();
  }
  return Status::Internal("unhandled command");
}

Result<std::pair<std::shared_ptr<EntropyEngine>, uint64_t>>
QueryServer::ResolveEngine(Session* session) {
  if (session->pinned != nullptr) {
    return std::make_pair(session->pinned, session->pinned_version);
  }
  if (catalog_ == nullptr) {
    return std::make_pair(static_engine_, uint64_t{0});
  }
  const uint64_t id = catalog_->current();
  ASSIGN_OR_RETURN(std::shared_ptr<EntropyEngine> engine, catalog_->Pin(id));
  return std::make_pair(std::move(engine), id);
}

Result<std::string> QueryServer::HandleQuery(Session* session,
                                             const Request& req) {
  ASSIGN_OR_RETURN(auto resolved, ResolveEngine(session));
  const std::shared_ptr<EntropyEngine>& engine = resolved.first;
  const uint64_t version = resolved.second;
  ASSIGN_OR_RETURN(
      ParsedQuery parsed,
      ParseQuery(req.query, engine->attr_names(), engine->domains()));
  const std::string key = CanonicalQueryKey(parsed);
  if (auto cached = cache_.Get(version, key); cached.has_value()) {
    std::vector<std::string> lines = ResultLines(*cached);
    lines.push_back("cached 1");
    return EncodeOkResponse(lines);
  }
  const std::chrono::milliseconds deadline(
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms);
  QueryResult result;
  switch (parsed.aggregate) {
    case ParsedQuery::Aggregate::kCount: {
      // COUNT keeps riding the micro-batcher (the admission-controlled
      // path); everything else answers through the unified surface.
      ASSIGN_OR_RETURN(QueryEstimate est,
                       batcher_->Submit(engine, parsed.where, deadline));
      result = CountResult(est);
      break;
    }
    case ParsedQuery::Aggregate::kSum: {
      ASSIGN_OR_RETURN(
          result, engine->Answer(AggregateQuery::Sum(
                      parsed.agg_attr,
                      AggregateWeights(*engine, parsed.agg_attr),
                      parsed.where)));
      break;
    }
    case ParsedQuery::Aggregate::kAvg: {
      ASSIGN_OR_RETURN(
          result, engine->Answer(AggregateQuery::Avg(
                      parsed.agg_attr,
                      AggregateWeights(*engine, parsed.agg_attr),
                      parsed.where)));
      break;
    }
    case ParsedQuery::Aggregate::kQuantile: {
      ASSIGN_OR_RETURN(
          result, engine->Answer(AggregateQuery::Quantile(
                      parsed.agg_attr,
                      AggregateWeights(*engine, parsed.agg_attr),
                      parsed.quantile, parsed.where)));
      break;
    }
    case ParsedQuery::Aggregate::kTopK: {
      ASSIGN_OR_RETURN(
          result, engine->Answer(AggregateQuery::TopK(
                      parsed.agg_attr, parsed.top_k, parsed.where)));
      break;
    }
  }
  cache_.Put(version, key, result);
  std::vector<std::string> lines = ResultLines(result);
  lines.push_back("cached 0");
  return EncodeOkResponse(lines);
}

Result<std::string> QueryServer::HandleJoin(Session* session,
                                            const Request& req) {
  if (join_engine_ == nullptr) {
    return Status::FailedPrecondition(
        "server has no join relation (start with --join <path>)");
  }
  ASSIGN_OR_RETURN(auto resolved, ResolveEngine(session));
  const std::shared_ptr<EntropyEngine>& engine = resolved.first;
  const uint64_t version = resolved.second;
  ASSIGN_OR_RETURN(
      ParsedJoinQuery parsed,
      ParseJoinQuery(req.query, engine->attr_names(), engine->domains(),
                     join_engine_->attr_names(), join_engine_->domains()));
  // The right-side engine is loaded once at startup and immutable, so the
  // left version alone still keys the cache correctly.
  const std::string key = CanonicalJoinQueryKey(parsed);
  if (auto cached = cache_.Get(version, key); cached.has_value()) {
    std::vector<std::string> lines = ResultLines(*cached);
    lines.push_back("cached 1");
    return EncodeOkResponse(lines);
  }
  AggregateQuery query =
      parsed.aggregate == ParsedJoinQuery::Aggregate::kCount
          ? AggregateQuery::JoinCount(parsed.left_join, parsed.right_join,
                                      parsed.left_where, parsed.right_where)
          : AggregateQuery::JoinSum(
                parsed.agg_attr, AggregateWeights(*engine, parsed.agg_attr),
                parsed.left_join, parsed.right_join, parsed.left_where,
                parsed.right_where);
  ASSIGN_OR_RETURN(QueryResult result,
                   engine->AnswerJoin(query, *join_engine_));
  cache_.Put(version, key, result);
  std::vector<std::string> lines = ResultLines(result);
  lines.push_back("cached 0");
  return EncodeOkResponse(lines);
}

Result<std::string> QueryServer::HandleBatch(Session* session,
                                             const Request& req) {
  ASSIGN_OR_RETURN(auto resolved, ResolveEngine(session));
  const std::shared_ptr<EntropyEngine>& engine = resolved.first;
  const uint64_t version = resolved.second;
  const auto deadline_at =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(req.deadline_ms > 0
                                    ? req.deadline_ms
                                    : options_.default_deadline_ms);

  // Parse everything before submitting anything: a malformed query fails
  // the whole batch without burning answer work.
  struct Slot {
    std::string key;
    std::optional<QueryResult> cached;
    std::future<Result<QueryEstimate>> future;
  };
  std::vector<Slot> slots(req.queries.size());
  std::vector<ParsedQuery> parsed(req.queries.size());
  for (size_t i = 0; i < req.queries.size(); ++i) {
    ASSIGN_OR_RETURN(
        parsed[i],
        ParseQuery(req.queries[i], engine->attr_names(), engine->domains()));
    if (parsed[i].aggregate != ParsedQuery::Aggregate::kCount) {
      return Status::InvalidArgument(
          "BATCH queries must be COUNT (the batched answering path)");
    }
    slots[i].key = CanonicalQueryKey(parsed[i]);
    slots[i].cached = cache_.Get(version, slots[i].key);
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].cached.has_value()) continue;
    ASSIGN_OR_RETURN(slots[i].future,
                     batcher_->SubmitAsync(engine, parsed[i].where,
                                           deadline_at));
  }
  std::vector<std::string> lines;
  lines.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].cached.has_value()) {
      lines.push_back(EstimateLine(slots[i].cached->estimate));
      continue;
    }
    if (slots[i].future.wait_until(deadline_at) !=
        std::future_status::ready) {
      return Status::DeadlineExceeded("batch deadline exceeded");
    }
    ASSIGN_OR_RETURN(QueryEstimate est, slots[i].future.get());
    cache_.Put(version, slots[i].key, CountResult(est));
    lines.push_back(EstimateLine(est));
  }
  return EncodeOkResponse(lines);
}

Result<std::string> QueryServer::HandleOpen(Session* session,
                                            const Request& req) {
  if (catalog_ == nullptr) {
    if (req.version != 0) {
      return Status::FailedPrecondition("served store is not versioned");
    }
    session->pinned = nullptr;
    session->pinned_version = 0;
    return EncodeOkResponse({"version 0"});
  }
  RETURN_NOT_OK(catalog_->Refresh().status());
  if (req.version == 0) {
    session->pinned = nullptr;
    session->pinned_version = 0;
    return EncodeOkResponse(
        {"version " + std::to_string(catalog_->current())});
  }
  ASSIGN_OR_RETURN(session->pinned, catalog_->Pin(req.version));
  session->pinned_version = req.version;
  return EncodeOkResponse({"version " + std::to_string(req.version)});
}

Result<std::string> QueryServer::HandleStats(Session* session) {
  ASSIGN_OR_RETURN(auto resolved, ResolveEngine(session));
  const EngineStats engine = resolved.first->stats();
  const ResultCache::Stats cache = cache_.stats();
  const QueryBatcher::Stats batcher = batcher_->stats();
  const Stats server = stats();
  std::vector<std::string> lines;
  lines.push_back("version " +
                  std::to_string(catalog_ ? catalog_->current() : 0));
  lines.push_back(
      "retained " +
      JoinIds(catalog_ ? catalog_->versions() : std::vector<uint64_t>{}));
  lines.push_back("n " + std::to_string(resolved.first->n()));
  lines.push_back("queries " + std::to_string(engine.queries));
  lines.push_back("batches " + std::to_string(engine.batches));
  lines.push_back("batched_queries " +
                  std::to_string(engine.batched_queries));
  lines.push_back("cache_hits " + std::to_string(cache.hits));
  lines.push_back("cache_misses " + std::to_string(cache.misses));
  lines.push_back("cache_entries " + std::to_string(cache.entries));
  lines.push_back("admitted " + std::to_string(batcher.accepted));
  lines.push_back("rejected " + std::to_string(batcher.rejected));
  lines.push_back("expired " + std::to_string(batcher.expired));
  lines.push_back("connections " + std::to_string(server.connections));
  lines.push_back("requests " + std::to_string(server.requests));
  return EncodeOkResponse(lines);
}

Result<std::string> QueryServer::HandleVersion() {
  // The capability list lets a client feature-detect the aggregate surface
  // instead of probing with throwaway queries; "join" appears only when a
  // right-side relation is configured.
  std::string capabilities = "capabilities count sum avg quantile topk batch";
  if (join_engine_ != nullptr) capabilities += " join";
  if (catalog_ == nullptr) {
    return EncodeOkResponse({"current 0", "retained ", capabilities});
  }
  RETURN_NOT_OK(catalog_->Refresh().status());
  return EncodeOkResponse(
      {"current " + std::to_string(catalog_->current()),
       "retained " + JoinIds(catalog_->versions()), capabilities});
}

}  // namespace entropydb
