#include "server/version_catalog.h"

#include <algorithm>

namespace entropydb {

Result<std::unique_ptr<VersionCatalog>> VersionCatalog::Open(
    const std::string& root, SummaryOptions opts, Env* env) {
  VersionSet::Options vopts;
  vopts.verify_checksums = opts.verify_checksums;
  ASSIGN_OR_RETURN(std::unique_ptr<VersionSet> versions,
                   VersionSet::Open(root, env, vopts));
  if (versions->current() == 0) {
    return Status::FailedPrecondition(
        "versioned root has no published version: " + root);
  }
  std::unique_ptr<VersionCatalog> catalog(
      new VersionCatalog(std::move(versions), opts, env));
  RETURN_NOT_OK(catalog->Live().status());
  return catalog;
}

Result<std::shared_ptr<EntropyEngine>> VersionCatalog::Live() {
  const uint64_t id = version_set_->current();
  std::lock_guard<std::mutex> lock(mu_);
  return PinLocked(id);
}

Result<std::shared_ptr<EntropyEngine>> VersionCatalog::Pin(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return PinLocked(id);
}

Result<std::shared_ptr<EntropyEngine>> VersionCatalog::PinLocked(
    uint64_t id) {
  auto it = engines_.find(id);
  if (it != engines_.end()) return it->second;
  const std::vector<uint64_t> retained = version_set_->versions();
  if (std::find(retained.begin(), retained.end(), id) == retained.end()) {
    return Status::NotFound("version not retained: v" + std::to_string(id));
  }
  ASSIGN_OR_RETURN(
      std::shared_ptr<EntropyEngine> engine,
      EntropyEngine::Open(version_set_->VersionDir(id), opts_, env_));
  engines_[id] = engine;
  return engine;
}

Result<bool> VersionCatalog::Refresh() {
  ASSIGN_OR_RETURN(const bool changed, version_set_->Refresh());
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<uint64_t> retained = version_set_->versions();
  for (auto it = engines_.begin(); it != engines_.end();) {
    if (std::find(retained.begin(), retained.end(), it->first) ==
        retained.end()) {
      // Sessions still holding the shared_ptr keep answering; the catalog
      // just stops handing the retired engine to new pins.
      it = engines_.erase(it);
    } else {
      ++it;
    }
  }
  if (changed) PinLocked(current()).status().ok();
  return changed;
}

uint64_t VersionCatalog::current() const { return version_set_->current(); }

std::vector<uint64_t> VersionCatalog::versions() const {
  return version_set_->versions();
}

}  // namespace entropydb
