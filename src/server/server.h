#ifndef ENTROPYDB_SERVER_SERVER_H_
#define ENTROPYDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "engine/engine.h"
#include "server/batcher.h"
#include "server/result_cache.h"
#include "server/version_catalog.h"
#include "server/wire_protocol.h"

namespace entropydb {

/// \brief The entropydb_serve query server: a TCP front-end over versioned
/// EntropyEngines.
///
/// One server process serves one store path. A *versioned root*
/// (storage/version_set.h) serves its CURRENT version live, lets sessions
/// OPEN any retained version for snapshot-pinned reads (time travel), and
/// picks up externally published versions on OPEN/VERSION commands — a
/// publish is a pointer flip, so readers never block on writers and a
/// session pinned on v(n) keeps answering from v(n)'s immutable files
/// while v(n+1) goes live. A plain store directory or summary file is
/// served too, just without version commands.
///
/// Request flow per session (one thread per connection; sessions are
/// independent): frame decode -> ParseRequest -> result cache probe
/// (keyed on (version, canonical query) — immutable versions make hits
/// trivially correct) -> COUNT queries micro-batch through the shared
/// QueryBatcher into AnswerAll, every other aggregate kind answers
/// directly through the engine's unified Answer(AggregateQuery) surface
/// -> framed response rendered from the QueryResult (so a cache hit is
/// byte-identical to the miss that populated it). Overload returns typed
/// SERVER_BUSY/DEADLINE_EXCEEDED errors (see server/batcher.h) instead of
/// queuing without bound.
///
/// When Options::join_path names a second store, the JOIN command fuses
/// the served (LEFT) engine with that static right-side engine
/// (EntropyEngine::AnswerJoin); VERSION advertises the "join" capability
/// only then, and JOIN without it is FAILED_PRECONDITION.
///
/// The wire protocol is specified in docs/SERVING.md and implemented in
/// server/wire_protocol.h; entropydb_client and WireClient speak it.
class QueryServer {
 public:
  struct Options {
    /// Versioned root, plain store directory, or summary file to serve.
    std::string path;
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// Admission bound for queued queries (QueryBatcher::Options).
    size_t queue_capacity = 256;
    /// Most queries per AnswerAll dispatch.
    size_t max_batch = 64;
    /// Result cache entries (0 disables caching).
    size_t cache_capacity = 4096;
    /// Deadline for requests that do not carry their own, in ms.
    uint64_t default_deadline_ms = 30000;
    /// Store/summary load knobs (checksum verification etc.).
    SummaryOptions summary;
    /// Right-side relation for JOIN queries (store directory or summary
    /// file, loaded once at startup); empty disables the JOIN command.
    std::string join_path;
  };

  /// Server-level monotonic counters (the STATS command also merges
  /// engine, batcher, and cache counters).
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
  };

  /// Opens the store, binds 127.0.0.1:port, and starts accepting.
  static Result<std::unique_ptr<QueryServer>> Start(const Options& options,
                                                    Env* env = Env::Default());

  ~QueryServer();

  /// The bound port (the ephemeral one when Options::port was 0).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes every session, drains the batcher, joins all
  /// threads. Idempotent; the destructor calls it.
  void Stop();

  /// Re-reads the root's CURRENT pointer (no-op for unversioned paths).
  /// Sessions trigger the same refresh with OPEN/VERSION commands; this
  /// entry point is for an embedding process that just published.
  Result<bool> RefreshVersions();

  Stats stats() const;

 private:
  explicit QueryServer(const Options& options, Env* env)
      : options_(options), env_(env), cache_(options.cache_capacity) {}

  /// Per-session pin state.
  struct Session {
    /// Engine pinned by OPEN <id>; null = follow live.
    std::shared_ptr<EntropyEngine> pinned;
    uint64_t pinned_version = 0;
  };

  void AcceptLoop();
  void SessionLoop(int fd);
  /// Maps a request to a full response payload; an error Status becomes
  /// an ERR response in the caller.
  Result<std::string> HandleRequest(Session* session, const Request& req);
  /// The engine a session's queries answer against, plus its version id
  /// (0 when unversioned).
  Result<std::pair<std::shared_ptr<EntropyEngine>, uint64_t>> ResolveEngine(
      Session* session);
  Result<std::string> HandleQuery(Session* session, const Request& req);
  Result<std::string> HandleJoin(Session* session, const Request& req);
  Result<std::string> HandleBatch(Session* session, const Request& req);
  Result<std::string> HandleOpen(Session* session, const Request& req);
  Result<std::string> HandleStats(Session* session);
  Result<std::string> HandleVersion();

  const Options options_;
  Env* const env_;

  /// Exactly one of catalog_ (versioned root) / static_engine_ is set.
  std::unique_ptr<VersionCatalog> catalog_;
  std::shared_ptr<EntropyEngine> static_engine_;
  /// Right-side JOIN relation; null unless Options::join_path was set.
  std::shared_ptr<EntropyEngine> join_engine_;

  std::unique_ptr<QueryBatcher> batcher_;
  ResultCache cache_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;
  std::vector<int> session_fds_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_SERVER_H_
