#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace entropydb {

namespace {

Status SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

WireClient::~WireClient() { Close(); }

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

Result<WireClient> WireClient::Connect(const std::string& host,
                                       uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }
  WireClient client;
  client.fd_ = fd;
  return client;
}

Result<WireResponse> WireClient::Call(const Request& request) {
  return CallRaw(EncodeRequest(request));
}

Result<WireResponse> WireClient::CallRaw(const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  RETURN_NOT_OK(SendAll(fd_, EncodeFrame(payload)));
  char buf[1 << 14];
  for (;;) {
    ASSIGN_OR_RETURN(std::optional<std::string> frame, decoder_.Next());
    if (frame.has_value()) return ParseResponse(*frame);
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("server closed connection mid-response");
    }
    decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Status WireClient::SendBytesAndAwaitClose(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  RETURN_NOT_OK(SendAll(fd_, bytes));
  char buf[1 << 12];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::OK();
    // Drain whatever the server sends (e.g. a final error frame) until
    // it closes.
  }
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace entropydb
