#include "server/batcher.h"

#include <vector>

namespace entropydb {

QueryBatcher::QueryBatcher(Options options) : options_(options) {
  if (options_.start_worker) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

QueryBatcher::~QueryBatcher() { Stop(); }

Result<std::future<Result<QueryEstimate>>> QueryBatcher::SubmitAsync(
    std::shared_ptr<const EntropyEngine> engine, CountingQuery query,
    std::chrono::steady_clock::time_point deadline) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine submitted");
  }
  std::future<Result<QueryEstimate>> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::ResourceExhausted("batcher stopped");
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      return Status::ResourceExhausted("admission queue full");
    }
    Pending pending;
    pending.engine = std::move(engine);
    pending.query = std::move(query);
    pending.deadline = deadline;
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    ++stats_.accepted;
  }
  cv_.notify_one();
  return future;
}

Result<QueryEstimate> QueryBatcher::Submit(
    std::shared_ptr<const EntropyEngine> engine, CountingQuery query,
    std::chrono::milliseconds deadline) {
  const auto deadline_at = std::chrono::steady_clock::now() + deadline;
  ASSIGN_OR_RETURN(std::future<Result<QueryEstimate>> future,
                   SubmitAsync(std::move(engine), std::move(query),
                               deadline_at));
  if (future.wait_until(deadline_at) != std::future_status::ready) {
    // The queued entry stays; dispatch will answer it into an abandoned
    // future (or expire it), but THIS caller's latency bound holds.
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return future.get();
}

std::vector<QueryBatcher::Pending> QueryBatcher::TakeBatchLocked() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  const EntropyEngine* engine = queue_.front().engine.get();
  // One dispatch never mixes engines (= versions); entries for other
  // engines keep their order for a later dispatch.
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch;) {
    if (it->engine.get() == engine) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

size_t QueryBatcher::DrainOnce() {
  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch = TakeBatchLocked();
    if (batch.empty()) return 0;
    ++stats_.batches;
  }
  // Fail entries whose deadline already passed instead of spending answer
  // work on a result nobody is waiting for.
  const auto now = std::chrono::steady_clock::now();
  std::vector<Pending> live;
  size_t expired = 0;
  for (Pending& p : batch) {
    if (p.deadline <= now) {
      p.promise.set_value(Status::DeadlineExceeded("expired in queue"));
      ++expired;
    } else {
      live.push_back(std::move(p));
    }
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.expired += expired;
  }
  if (live.empty()) return batch.size();

  std::vector<CountingQuery> queries;
  queries.reserve(live.size());
  for (const Pending& p : live) queries.push_back(p.query);
  auto answers = live.front().engine->AnswerAll(queries);
  if (!answers.ok()) {
    // Batch-level failure: every caller gets the status. Per-query errors
    // (e.g. one arity mismatch) surface this way too — acceptable for a
    // micro-batch of a few dozen; the session layer reports the code.
    for (Pending& p : live) p.promise.set_value(answers.status());
    return batch.size();
  }
  for (size_t i = 0; i < live.size(); ++i) {
    live[i].promise.set_value((*answers)[i]);
  }
  return batch.size();
}

void QueryBatcher::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      if (stopped_) return;
    }
    DrainOnce();
  }
}

void QueryBatcher::Stop() {
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    leftover.swap(queue_);
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  for (Pending& p : leftover) {
    p.promise.set_value(Status::ResourceExhausted("batcher stopped"));
  }
}

QueryBatcher::Stats QueryBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace entropydb
