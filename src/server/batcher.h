#ifndef ENTROPYDB_SERVER_BATCHER_H_
#define ENTROPYDB_SERVER_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.h"

namespace entropydb {

/// \brief Bounded admission queue that micro-batches COUNT queries into
/// EntropyEngine::AnswerAll.
///
/// Concurrently arriving queries from many sessions queue here; a single
/// dispatcher thread drains up to `max_batch` of them that target the same
/// engine (one batch never mixes versions) into one AnswerAll call, whose
/// lock-free workspace fan-out answers them in parallel. That converts N
/// sessions' serial answer calls into pool-wide batches — the serving-side
/// use of the batched answering path the benchmarks measure.
///
/// Admission control is typed, never blocking-on-full: a Submit against a
/// full queue returns kResourceExhausted immediately (the wire layer maps
/// it to SERVER_BUSY), and every request carries a deadline — expired
/// entries are failed with kDeadlineExceeded at dispatch, and a waiting
/// Submit gives up with the same code even if its query is still queued
/// (the eventual result is dropped). Overload therefore degrades to fast
/// typed errors instead of unbounded latency.
///
/// Thread-safe. Tests construct with `start_worker` = false and call
/// DrainOnce() to step the dispatcher deterministically.
class QueryBatcher {
 public:
  struct Options {
    /// Admission bound: queries queued-but-not-dispatched beyond this are
    /// rejected with kResourceExhausted.
    size_t queue_capacity = 256;
    /// Most queries one AnswerAll dispatch may carry.
    size_t max_batch = 64;
    /// Spawn the dispatcher thread (false for deterministic tests).
    bool start_worker = true;
  };

  /// Monotonic counters for STATS.
  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t expired = 0;
    uint64_t batches = 0;
  };

  explicit QueryBatcher(Options options);
  QueryBatcher() : QueryBatcher(Options()) {}
  ~QueryBatcher();

  QueryBatcher(const QueryBatcher&) = delete;
  QueryBatcher& operator=(const QueryBatcher&) = delete;

  /// Enqueues a query against `engine` and returns a future for its
  /// estimate, or kResourceExhausted when the queue is full. The future
  /// resolves when a dispatch answers (or expires) the query.
  Result<std::future<Result<QueryEstimate>>> SubmitAsync(
      std::shared_ptr<const EntropyEngine> engine, CountingQuery query,
      std::chrono::steady_clock::time_point deadline);

  /// SubmitAsync + wait: returns the estimate, kResourceExhausted on a
  /// full queue, or kDeadlineExceeded when `deadline` passes first.
  Result<QueryEstimate> Submit(std::shared_ptr<const EntropyEngine> engine,
                               CountingQuery query,
                               std::chrono::milliseconds deadline);

  /// Dispatches one batch inline (test hook; also usable as a manual
  /// pump when constructed without a worker). Returns the number of
  /// queries dispatched or expired.
  size_t DrainOnce();

  /// Stops the dispatcher and fails everything still queued with
  /// kResourceExhausted. Idempotent; the destructor calls it.
  void Stop();

  Stats stats() const;

 private:
  struct Pending {
    std::shared_ptr<const EntropyEngine> engine;
    CountingQuery query;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Result<QueryEstimate>> promise;
  };

  void WorkerLoop();
  /// Pops up to max_batch entries sharing the front's engine. Caller
  /// holds mu_.
  std::vector<Pending> TakeBatchLocked();

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopped_ = false;
  Stats stats_;
  std::thread worker_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_BATCHER_H_
