#include "server/result_cache.h"

#include <cstdio>
#include <sstream>

namespace entropydb {

namespace {

/// Renders one predicate through its allowed-code-set semantics, so
/// equivalent shapes (point, [c,c] range, {c} set) share a rendering.
void AppendPredicate(std::ostringstream& out, AttrId attr,
                     const AttrPredicate& pred) {
  out << ";" << attr;
  switch (pred.kind()) {
    case AttrPredicate::Kind::kAny:
      return;  // not rendered; caller skips ANY
    case AttrPredicate::Kind::kPoint:
      out << "=" << pred.lo();
      return;
    case AttrPredicate::Kind::kRange:
      if (pred.lo() == pred.hi()) {
        out << "=" << pred.lo();
      } else {
        out << "[" << pred.lo() << "," << pred.hi() << "]";
      }
      return;
    case AttrPredicate::Kind::kSet: {
      const std::vector<Code>& codes = pred.set();
      if (codes.size() == 1) {
        out << "=" << codes[0];
        return;
      }
      // InSet sorts and dedups on construction, so the rendering is
      // already order-insensitive.
      out << "{";
      for (size_t i = 0; i < codes.size(); ++i) {
        if (i > 0) out << ",";
        out << codes[i];
      }
      out << "}";
      return;
    }
  }
}

}  // namespace

std::string CanonicalQueryKey(const ParsedQuery& query) {
  std::ostringstream out;
  switch (query.aggregate) {
    case ParsedQuery::Aggregate::kCount:
      out << "count";
      break;
    case ParsedQuery::Aggregate::kSum:
      out << "sum:" << query.agg_attr;
      break;
    case ParsedQuery::Aggregate::kAvg:
      out << "avg:" << query.agg_attr;
      break;
    case ParsedQuery::Aggregate::kQuantile: {
      // %.17g round-trips the parsed rank, so QUANTILE(x, 0.5) and
      // QUANTILE(x, 0.50) share a key while distinct ranks never collide.
      char rank[32];
      std::snprintf(rank, sizeof(rank), "%.17g", query.quantile);
      out << "quantile:" << query.agg_attr << ":" << rank;
      break;
    }
    case ParsedQuery::Aggregate::kTopK:
      out << "topk:" << query.agg_attr << ":" << query.top_k;
      break;
  }
  for (AttrId a = 0; a < query.where.num_attributes(); ++a) {
    const AttrPredicate& pred = query.where.predicate(a);
    if (pred.is_any()) continue;
    AppendPredicate(out, a, pred);
  }
  return out.str();
}

std::string CanonicalJoinQueryKey(const ParsedJoinQuery& query) {
  std::ostringstream out;
  switch (query.aggregate) {
    case ParsedJoinQuery::Aggregate::kCount:
      out << "joinc";
      break;
    case ParsedJoinQuery::Aggregate::kSum:
      out << "joins:" << query.agg_attr;
      break;
  }
  out << ":" << query.left_join << "=" << query.right_join;
  // "|L"/"|R" fence the sides: '|' never appears in a predicate rendering,
  // so left/right predicate sets cannot be confused with one another.
  out << "|L";
  for (AttrId a = 0; a < query.left_where.num_attributes(); ++a) {
    const AttrPredicate& pred = query.left_where.predicate(a);
    if (pred.is_any()) continue;
    AppendPredicate(out, a, pred);
  }
  out << "|R";
  for (AttrId a = 0; a < query.right_where.num_attributes(); ++a) {
    const AttrPredicate& pred = query.right_where.predicate(a);
    if (pred.is_any()) continue;
    AppendPredicate(out, a, pred);
  }
  return out.str();
}

std::optional<QueryResult> ResultCache::Get(uint64_t version,
                                            const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(FullKey(version, key));
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::Put(uint64_t version, const std::string& key,
                      const QueryResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::string full = FullKey(version, key);
  auto it = index_.find(full);
  if (it != index_.end()) {
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{full, result});
  index_[std::move(full)] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = lru_.size();
  return s;
}

}  // namespace entropydb
