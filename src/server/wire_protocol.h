#ifndef ENTROPYDB_SERVER_WIRE_PROTOCOL_H_
#define ENTROPYDB_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace entropydb {

/// \brief The entropydb_serve wire protocol codec — pure string functions,
/// no sockets, so tests exercise exactly what the server and client speak
/// (docs/SERVING.md is the normative spec; keep the two in lockstep).
///
/// Framing: every message, in either direction, is one *frame*:
///
///     <8 lowercase hex digits: payload byte length> '\n' <payload bytes>
///
/// The fixed-width length makes the reader state machine trivial and a
/// desynchronized peer detectable: a header that is not hex-plus-newline,
/// or a length above kMaxFramePayload, is a protocol error and the
/// connection must be closed (there is no way to resynchronize a byte
/// stream with a corrupt length prefix).
///
/// Request payloads are a command on the first line; BATCH carries its
/// queries on the following lines. Response payloads start with "OK" or
/// "ERR <CODE> <message>" followed by result lines. See docs/SERVING.md
/// for the command table and error codes.

/// Hard ceiling on a frame payload (1 MiB). Large enough for a maximal
/// BATCH, small enough that a garbage length prefix cannot make the
/// reader buffer gigabytes.
inline constexpr size_t kMaxFramePayload = 1u << 20;

/// Bytes in a frame header: 8 hex digits + '\n'.
inline constexpr size_t kFrameHeaderSize = 9;

/// Most queries one BATCH may carry.
inline constexpr size_t kMaxBatchQueries = 1024;

/// Wraps `payload` in a frame header.
std::string EncodeFrame(std::string_view payload);

/// \brief Incremental frame reader: feed raw bytes as they arrive, pop
/// complete payloads. After any malformed header the decoder is poisoned —
/// every further Next() fails, matching the close-the-connection rule.
class FrameDecoder {
 public:
  /// Appends raw bytes from the stream.
  void Feed(std::string_view bytes);

  /// Returns the next complete payload, std::nullopt when more bytes are
  /// needed, or kInvalidArgument on a malformed or oversized header.
  Result<std::optional<std::string>> Next();

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

/// The six request commands.
enum class CommandType { kOpen, kQuery, kBatch, kStats, kVersion, kJoin };

/// \brief A decoded request payload.
///
/// On the wire (first line; '/' attaches the optional per-request deadline
/// to the command word so query text never needs escaping):
///
///     OPEN live | OPEN <version-id>
///     QUERY[/<deadline-ms>] <query text>
///     JOIN[/<deadline-ms>] <join query text>
///     BATCH[/<deadline-ms>] <n>     (then n lines, one query each)
///     STATS
///     VERSION
struct Request {
  CommandType type = CommandType::kQuery;
  /// kOpen: the version to pin; 0 means "live" (follow CURRENT).
  uint64_t version = 0;
  /// Per-request deadline in ms; 0 means "use the server default".
  uint64_t deadline_ms = 0;
  /// kQuery: the query text (the paper dialect, see query/parser.h).
  /// kJoin: the two-relation join dialect (ParseJoinQuery).
  std::string query;
  /// kBatch: the queries, in response order.
  std::vector<std::string> queries;
};

/// Renders a request payload (client side).
std::string EncodeRequest(const Request& req);

/// Parses a request payload (server side). Unknown commands, bad counts,
/// and oversized batches are kInvalidArgument.
Result<Request> ParseRequest(const std::string& payload);

/// \brief A decoded response payload: "OK" + result lines, or a typed
/// error.
struct WireResponse {
  bool ok = false;
  /// Error code word (e.g. "SERVER_BUSY"); empty when ok.
  std::string code;
  /// Error message; empty when ok.
  std::string message;
  /// Result lines after the status line.
  std::vector<std::string> lines;
};

/// Renders "OK" + lines (server side).
std::string EncodeOkResponse(const std::vector<std::string>& lines);

/// Renders "ERR <CODE> <message>" from a Status (server side); the code is
/// WireErrorCode of the status code.
std::string EncodeErrorResponse(const Status& status);

/// Parses a response payload (client side).
Result<WireResponse> ParseResponse(const std::string& payload);

/// The wire error code for a status: BAD_REQUEST, NOT_FOUND, SERVER_BUSY,
/// DEADLINE_EXCEEDED, FAILED_PRECONDITION, or INTERNAL.
std::string_view WireErrorCode(StatusCode code);

/// The client-side inverse: a Status carrying the code a wire error maps
/// back to (unknown codes become kInternal).
Status StatusFromWire(const std::string& code, const std::string& message);

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_WIRE_PROTOCOL_H_
