#ifndef ENTROPYDB_SERVER_CLIENT_H_
#define ENTROPYDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "server/wire_protocol.h"

namespace entropydb {

/// \brief Minimal blocking client for the entropydb_serve wire protocol:
/// one TCP connection, one request/response in flight at a time.
///
/// Used by the entropydb_client tool, the server tests, and
/// bench_serving; concurrency benchmarks open one WireClient per client
/// thread. Close() (or destruction) closes the socket; the server treats
/// that as a clean session end.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects to `host`:`port` (numeric IPv4, e.g. "127.0.0.1").
  static Result<WireClient> Connect(const std::string& host, uint16_t port);

  /// Sends one request and waits for its response frame. A transport
  /// error (or a response the codec rejects) is an error Status; a typed
  /// server-side error arrives as a WireResponse with ok == false.
  Result<WireResponse> Call(const Request& request);

  /// Call with a raw payload — lets tests drive payloads EncodeRequest
  /// cannot produce.
  Result<WireResponse> CallRaw(const std::string& payload);

  /// Sends raw bytes without framing (tests: malformed frames) and reads
  /// until the server closes the connection.
  Status SendBytesAndAwaitClose(const std::string& bytes);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_CLIENT_H_
