#ifndef ENTROPYDB_SERVER_VERSION_CATALOG_H_
#define ENTROPYDB_SERVER_VERSION_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "storage/version_set.h"

namespace entropydb {

/// \brief Open engines for a versioned root, one per pinned version.
///
/// The serving-side half of the version lifecycle: the VersionSet tracks
/// what is on disk, the catalog tracks what is in memory. Pin(id) opens
/// (once) and hands out a shared engine for a retained version; sessions
/// hold the shared_ptr, so an engine stays answerable — bitwise-stable,
/// its files being immutable — even after its version retires from disk,
/// for as long as any session keeps it pinned. Refresh() re-reads CURRENT
/// to pick up publishes made by another process and drops cached engines
/// for versions the retention GC removed (sessions' own pins are
/// unaffected; the catalog just stops handing them to NEW sessions).
///
/// Thread-safe; one instance per served root.
class VersionCatalog {
 public:
  /// Opens the versioned root (failing on a root with no published
  /// version) and eagerly pins the current version, so the server's first
  /// query pays no load.
  static Result<std::unique_ptr<VersionCatalog>> Open(
      const std::string& root, SummaryOptions opts, Env* env);

  /// The engine for the live (CURRENT) version.
  Result<std::shared_ptr<EntropyEngine>> Live();

  /// The engine for retained version `id`; kNotFound when `id` is neither
  /// retained on disk nor already pinned in memory.
  Result<std::shared_ptr<EntropyEngine>> Pin(uint64_t id);

  /// Re-reads CURRENT; returns true when the live version changed. Evicts
  /// cached engines for versions no longer retained.
  Result<bool> Refresh();

  uint64_t current() const;
  std::vector<uint64_t> versions() const;

 private:
  VersionCatalog(std::unique_ptr<VersionSet> versions, SummaryOptions opts,
                 Env* env)
      : version_set_(std::move(versions)), opts_(opts), env_(env) {}

  Result<std::shared_ptr<EntropyEngine>> PinLocked(uint64_t id);

  const std::unique_ptr<VersionSet> version_set_;
  const SummaryOptions opts_;
  Env* const env_;

  std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<EntropyEngine>> engines_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_SERVER_VERSION_CATALOG_H_
